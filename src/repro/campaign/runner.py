"""Parallel campaign execution with deterministic results.

:func:`execute_run` turns one :class:`~repro.campaign.spec.RunDescriptor`
into a plain-JSON result record; :class:`ParallelRunner` partitions the
miss-frontier into *shards* and fans those out over a
``concurrent.futures.ProcessPoolExecutor`` (or runs them in-process for
``jobs=1``), reassembling the records in descriptor order.  Because every
record is a pure function of its descriptor and the assembly order is
fixed, a parallel campaign's artifacts are bit-identical to a serial
campaign's — the only difference is wall-clock time.

Sharding is the IPC amortisation: a 10k-run grid crosses the executor
boundary ~``4 * jobs`` times instead of 10k times, and each
:class:`ShardTask` ships every distinct :class:`ArchConfig` exactly once —
descriptors inside the shard reference it by index, so identical platform
payloads are never re-pickled per run.  Inside a worker, contender rsk
programs are memoised per (config, kind) across the shard's runs.

A result cache/store can be attached so repeated campaigns only simulate
misses: lookups and insertions go through the batched
``get_many``/``put_many`` interface shared by the flat
:class:`~repro.campaign.cache.ResultCache` and the SQLite-indexed
:class:`~repro.campaign.store.ResultStore` (whose index answers a whole
grid in a handful of queries, and whose hits dedupe across *all*
historical campaigns).  :class:`CampaignOutcome.stats` reports how many
runs were simulated versus served from the cache.

Streaming: pass a :class:`~repro.campaign.artifacts.CampaignStreamWriter`
to :meth:`ParallelRunner.run` and records are appended to
``results.jsonl`` (and ``summary.json`` checkpointed) while the campaign
runs, in exactly the order a one-shot write would produce.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Tuple

from ..analysis.contention import (
    DECOMPOSITION_STAGES,
    ContenderHistogram,
    contender_histogram,
    contention_histogram,
    latency_decomposition,
)
from ..config import ArchConfig, FAIR_ARBITRATION_POLICIES, config_from_dict
from ..errors import AnalysisError, MethodologyError
from ..kernels.rsk import build_rsk
from ..methodology.experiment import ExperimentRunner
from ..methodology.workloads import WorkloadRun, run_single_workload
from ..sim.isa import Program
from ..sim.trace import global_trace_cache
from .spec import KIND_RSK, KIND_SYNTHETIC, SCHEMA_VERSION, RunDescriptor, campaign_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from .artifacts import CampaignStreamWriter


class ResultBackend(Protocol):
    """What the runner needs from a cache/store: batched digest I/O."""

    def get_many(self, digests: Sequence[str]) -> Dict[str, Dict[str, object]]: ...

    def put_many(self, items: Sequence[Tuple[str, Dict[str, object]]]) -> None: ...


def execute_run(
    descriptor: RunDescriptor,
    *,
    _contender_memo: Optional["_ContenderMemo"] = None,
    _config_slot: int = -1,
) -> Dict[str, object]:
    """Simulate one descriptor and return its JSON-serialisable result record.

    This is the worker function shipped to pool processes; it must stay a
    module-level callable so descriptors and results pickle cleanly.  The
    returned record intentionally contains no wall-clock or host metadata —
    it is the cacheable, machine-independent part of a campaign result.  The
    simulation engine is stripped from the embedded configuration for the
    same reason it is excluded from the digest: both engines are cycle-exact,
    so artifacts must be byte-identical whichever one produced them.
    """
    config_dict = descriptor.config.to_dict()
    config_dict.pop("engine", None)
    record: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "digest": descriptor.digest(),
        "preset": descriptor.preset,
        "kind": descriptor.kind,
        "arbiter": descriptor.config.bus.arbitration,
        "topology": descriptor.config.topology.name,
        "tasks": list(descriptor.tasks),
        "contenders": descriptor.contenders,
        "observed_core": descriptor.observed_core,
        "iterations": descriptor.iterations,
        "seed": descriptor.seed,
        "config": config_dict,
    }
    if descriptor.kind == KIND_SYNTHETIC:
        record["metrics"] = _synthetic_metrics(descriptor)
    else:
        record["rsk_kind"] = descriptor.rsk_kind
        record["metrics"] = _rsk_metrics(descriptor, _contender_memo, _config_slot)
    return record


#: Memo key for contender rsk programs: (config slot, rsk kind, occupied
#: cores, observed core) fully determines the contender program map.
_ContenderKey = Tuple[int, str, int, int]
_ContenderMemo = Dict[_ContenderKey, Dict[int, Program]]


def _synthetic_metrics(descriptor: RunDescriptor) -> Dict[str, object]:
    run = run_single_workload(
        descriptor.config,
        descriptor.tasks,
        observed_core=descriptor.observed_core,
        observed_iterations=descriptor.iterations,
        seed=descriptor.seed,
    )
    return {
        "execution_time": run.execution_time,
        "bus_utilisation": run.bus_utilisation,
        "contender_histogram": _json_histogram(run.histogram.counts),
        "contender_total_requests": run.histogram.total_requests,
    }


def _rsk_metrics(
    descriptor: RunDescriptor,
    contender_memo: Optional[_ContenderMemo] = None,
    config_slot: int = -1,
) -> Dict[str, object]:
    config = descriptor.config
    observed = descriptor.observed_core
    scua = build_rsk(config, observed, kind=descriptor.rsk_kind, iterations=descriptor.iterations)
    # Contender programs depend only on (config, kind, cores, observed), so a
    # shard executing many runs on the same platform builds them once.
    # Programs are frozen dataclasses, which makes sharing them safe.
    memo_key: _ContenderKey = (
        config_slot,
        descriptor.rsk_kind,
        len(descriptor.tasks),
        observed,
    )
    contenders: Optional[Dict[int, Program]] = (
        contender_memo.get(memo_key) if contender_memo is not None else None
    )
    if contenders is None:
        contenders = {
            core: build_rsk(config, core, kind=descriptor.rsk_kind, iterations=None)
            for core in range(len(descriptor.tasks))
            if core != observed
        }
        if contender_memo is not None:
            contender_memo[memo_key] = contenders
    runner = ExperimentRunner(config)
    isolation, contended = runner.run_pair(scua, contenders, scua_core=observed, trace=True)
    metrics: Dict[str, object] = contended.as_record()
    metrics["isolation"] = isolation.as_record()
    metrics["slowdown"] = contended.slowdown_versus(isolation)
    ready = contender_histogram(contended.trace, observed, config.num_cores)
    metrics["contender_histogram"] = _json_histogram(ready.counts)
    metrics["contender_total_requests"] = ready.total_requests
    try:
        decomposition = latency_decomposition(contended.trace, observed, skip_first=1)
    except AnalysisError:
        # No completed demand request of the observed core (e.g. a pure
        # store run): there is no per-resource decomposition to record.
        pass
    else:
        # Per-resource observed worst cases: the measured-bound fields the
        # summary aggregates against the analytical ``ubd_terms``.
        metrics["memory_requests"] = decomposition.memory_requests
        metrics["stage_worst_case"] = {
            stage: decomposition.max_observed(stage)
            for stage in DECOMPOSITION_STAGES
            if decomposition.histograms.get(stage)
        }
    try:
        delays = contention_histogram(contended.trace, observed, kinds=(descriptor.rsk_kind,))
    except AnalysisError:
        # Store rsk traffic drains through the store buffer; if no request of
        # the requested kind completed there is no delay histogram to report.
        return metrics
    metrics["contention_histogram"] = _json_histogram(delays.counts)
    metrics["max_contention_delay"] = delays.max_observed
    metrics["modal_contention_delay"] = delays.mode
    return metrics


def _json_histogram(counts: Dict[int, int]) -> Dict[str, int]:
    """Render an int-keyed histogram with string keys, sorted for stable JSON."""
    return {str(key): counts[key] for key in sorted(counts)}


def histogram_from_json(counts: Dict[str, int]) -> Dict[int, int]:
    """Invert :func:`_json_histogram` when loading artifacts."""
    return {int(key): value for key, value in counts.items()}


def workload_run_from_record(record: Dict[str, object]) -> WorkloadRun:
    """Rebuild the legacy :class:`WorkloadRun` view from a synthetic record."""
    if record["kind"] != KIND_SYNTHETIC:
        raise MethodologyError(
            f"record {record.get('run_id', '?')} is a {record['kind']!r} run, "
            "not a synthetic workload"
        )
    metrics = record["metrics"]
    histogram = ContenderHistogram(
        counts=histogram_from_json(metrics["contender_histogram"]),
        total_requests=metrics["contender_total_requests"],
        observed_core=record["observed_core"],
        num_cores=record["config"]["num_cores"],
    )
    return WorkloadRun(
        task_names=tuple(record["tasks"]),
        observed_core=record["observed_core"],
        histogram=histogram,
        execution_time=metrics["execution_time"],
        bus_utilisation=metrics["bus_utilisation"],
    )


@dataclass(frozen=True)
class ShardRun:
    """One run inside a :class:`ShardTask`, with the config replaced by an
    index into the shard's deduplicated config table.

    Campaign grids repeat the same :class:`ArchConfig` object across dozens
    of descriptors (every workload/seed of one grid point shares it); a
    shard pickles each distinct config once and each run carries only a
    small integer, so the IPC payload stays proportional to the number of
    *platforms* in the shard, not the number of runs.
    """

    run_id: str
    preset: str
    config_index: int
    kind: str
    tasks: Tuple[str, ...]
    observed_core: int
    iterations: int
    seed: int
    rsk_kind: str
    digest: str


@dataclass(frozen=True)
class ShardTask:
    """A contiguous slice of the miss-frontier, shipped to one worker."""

    index: int
    configs: Tuple[ArchConfig, ...]
    runs: Tuple[ShardRun, ...]


def compact_shard(index: int, pending: Sequence[Tuple[str, RunDescriptor]]) -> ShardTask:
    """Pack ``(digest, descriptor)`` pairs into a :class:`ShardTask`.

    Configs are deduplicated by object identity — :meth:`CampaignSpec.expand
    <repro.campaign.spec.CampaignSpec.expand>` reuses one config object per
    grid point, so identity dedup catches exactly the repetition that
    matters without hashing whole configurations.
    """
    configs: List[ArchConfig] = []
    slots: Dict[int, int] = {}
    runs: List[ShardRun] = []
    for digest, descriptor in pending:
        key = id(descriptor.config)
        slot = slots.get(key)
        if slot is None:
            slot = len(configs)
            configs.append(descriptor.config)
            slots[key] = slot
        runs.append(
            ShardRun(
                run_id=descriptor.run_id,
                preset=descriptor.preset,
                config_index=slot,
                kind=descriptor.kind,
                tasks=descriptor.tasks,
                observed_core=descriptor.observed_core,
                iterations=descriptor.iterations,
                seed=descriptor.seed,
                rsk_kind=descriptor.rsk_kind,
                digest=digest,
            )
        )
    return ShardTask(index=index, configs=tuple(configs), runs=tuple(runs))


def _attach_worker_trace_store(directory: str) -> None:
    """Pool-worker initializer: back this process's trace cache with the
    campaign store's ``traces/`` section.

    Runs once per worker process.  Opening a fresh :class:`ResultStore`
    handle is WAL-safe alongside the parent's; only the trace section is
    touched through it (run records still travel back over IPC).
    """
    from .store import ResultStore

    try:
        store = ResultStore(directory, campaign_id="trace-worker")
    except Exception:  # pragma: no cover - a worker without traces still works
        return
    global_trace_cache().attach_store(store)


def execute_shard(shard: ShardTask) -> Tuple[int, List[Tuple[str, Dict[str, object]]]]:
    """Execute a shard's runs in order; the worker entry point.

    Returns ``(shard.index, [(digest, record), ...])`` so the parent can
    reassemble shards in submission order regardless of completion order.
    One process-level setup (the contender-program memo) is amortised
    across every run of the shard.
    """
    memo: _ContenderMemo = {}
    results: List[Tuple[str, Dict[str, object]]] = []
    for run in shard.runs:
        descriptor = RunDescriptor(
            run_id=run.run_id,
            preset=run.preset,
            config=shard.configs[run.config_index],
            kind=run.kind,
            tasks=run.tasks,
            observed_core=run.observed_core,
            iterations=run.iterations,
            seed=run.seed,
            rsk_kind=run.rsk_kind,
        )
        record = execute_run(
            descriptor, _contender_memo=memo, _config_slot=run.config_index
        )
        results.append((run.digest, record))
    return shard.index, results


@dataclass(frozen=True)
class CampaignOutcome:
    """All records of a finished campaign plus execution statistics.

    Attributes:
        records: one result record per descriptor, in descriptor order, each
            carrying its ``run_id``.  Everything here is deterministic.
        stats: how the campaign was executed — jobs, cache hits, wall time.
            This is *timing metadata* and never enters ``results.jsonl``.
    """

    records: Tuple[Dict[str, object], ...]
    stats: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """Aggregate the records into the ``summary.json`` payload."""
        summary = summarize_records(self.records)
        summary["timing"] = dict(self.stats)
        return summary


class RecordEmitter:
    """Assembles final records in descriptor order as digests resolve.

    Keeps an emit pointer over the descriptor sequence and advances it
    whenever the next descriptor's digest has a record — which happens
    strictly in shard order, so the stream of emitted records is identical
    to what a serial one-shot run would produce.
    """

    def __init__(
        self,
        descriptors: Sequence[RunDescriptor],
        digests: Sequence[str],
        by_digest: Dict[str, Dict[str, object]],
        stream: Optional["CampaignStreamWriter"],
    ) -> None:
        self._descriptors = descriptors
        self._digests = digests
        self._by_digest = by_digest
        self._stream = stream
        self.records: List[Dict[str, object]] = []
        self._next = 0

    def drain(self) -> None:
        """Emit every descriptor whose digest is resolved, in order."""
        fresh: List[Dict[str, object]] = []
        while self._next < len(self._digests):
            base = self._by_digest.get(self._digests[self._next])
            if base is None:
                break
            record = dict(base)
            record["run_id"] = self._descriptors[self._next].run_id
            self.records.append(record)
            fresh.append(record)
            self._next += 1
        if fresh and self._stream is not None:
            self._stream.append(fresh)


def default_shard_size(pending: int, jobs: int) -> int:
    """Shard size targeting ~4 shards per worker: small enough that a slow
    shard cannot straggle the whole campaign, large enough that executor
    round-trips stay negligible (a 10k-run grid on 8 jobs crosses the pool
    boundary 32 times, not 10k times)."""
    if pending <= 0:
        return 1
    return max(1, math.ceil(pending / (4 * max(1, jobs))))


class ParallelRunner:
    """Executes run descriptors, optionally in parallel and through a cache.

    Args:
        jobs: worker processes; ``1`` executes in-process (no pool, no
            pickling) and is the reference behaviour the parallel path must
            reproduce bit-for-bit.
        cache: optional content-addressed result backend (flat
            :class:`~repro.campaign.cache.ResultCache` or SQLite-indexed
            :class:`~repro.campaign.store.ResultStore`) shared across
            campaigns; hits skip simulation entirely.
        shard_size: runs per dispatched shard; ``None`` picks
            :func:`default_shard_size` from the miss count and job count.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultBackend] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise MethodologyError(f"jobs must be >= 1, got {jobs}")
        if shard_size is not None and shard_size < 1:
            raise MethodologyError(f"shard_size must be >= 1, got {shard_size}")
        self.jobs = jobs
        self.cache = cache
        self.shard_size = shard_size

    def run(
        self,
        descriptors: Sequence[RunDescriptor],
        stream: Optional["CampaignStreamWriter"] = None,
    ) -> CampaignOutcome:
        """Execute ``descriptors`` and return their records in input order.

        With ``stream``, records are additionally appended to the stream
        writer as they resolve (cached prefix immediately, then shard by
        shard); the caller still finalises the stream with the summary.
        """
        started = time.perf_counter()
        # Back the process-global trace cache with the result store so
        # replay-engine campaigns dedup core captures across campaigns and
        # processes (the ``traces/`` section).  Duck-typed: the flat
        # ResultCache has no trace section and leaves the cache in-process.
        if hasattr(self.cache, "get_trace"):
            global_trace_cache().attach_store(self.cache)
        digests = [descriptor.digest() for descriptor in descriptors]
        # First occurrence of each digest, in descriptor order: duplicate
        # descriptors simulate once and share the record.
        frontier: Dict[str, RunDescriptor] = {}
        for digest, descriptor in zip(digests, descriptors):
            if digest not in frontier:
                frontier[digest] = descriptor
        by_digest: Dict[str, Dict[str, object]] = {}
        if self.cache is not None:
            for digest, record in self.cache.get_many(list(frontier)).items():
                if record.get("schema") == SCHEMA_VERSION:
                    by_digest[digest] = record
        cached_hits = len(by_digest)
        pending: List[Tuple[str, RunDescriptor]] = [
            (digest, descriptor)
            for digest, descriptor in frontier.items()
            if digest not in by_digest
        ]
        simulated = len(pending)
        shard_size = self.shard_size or default_shard_size(len(pending), self.jobs)
        shards = [
            compact_shard(index, pending[start : start + shard_size])
            for index, start in enumerate(range(0, len(pending), shard_size))
        ]

        if stream is not None:
            stream.begin(campaign_digest(digests), len(descriptors))
        emitter = RecordEmitter(descriptors, digests, by_digest, stream)
        try:
            # The cached prefix (the whole campaign, on a warm re-run)
            # streams before any shard is dispatched.
            emitter.drain()
            self._execute_shards(shards, by_digest, emitter, stream)
        except BaseException:
            if stream is not None:
                stream.abandon()
            raise

        stats: Dict[str, object] = {
            "runs": len(descriptors),
            "unique_runs": len(frontier),
            "simulated": simulated,
            "cached": cached_hits,
            "jobs": self.jobs,
            "shards": len(shards),
            "shard_size": shard_size,
            "elapsed_seconds": time.perf_counter() - started,
        }
        counters = getattr(self.cache, "counters", None)
        if counters is not None:
            stats["store"] = counters.as_dict()
        trace_stats = global_trace_cache().stats()
        if any(trace_stats.values()):
            # Only meaningful when the replay engine ran in this process
            # (worker processes keep their own per-process trace caches).
            stats["trace_cache"] = trace_stats
        return CampaignOutcome(records=tuple(emitter.records), stats=stats)

    def _execute_shards(
        self,
        shards: Sequence[ShardTask],
        by_digest: Dict[str, Dict[str, object]],
        emitter: RecordEmitter,
        stream: Optional["CampaignStreamWriter"],
    ) -> None:
        """Run the shards and absorb their results in shard order."""

        def absorb(fresh: List[Tuple[str, Dict[str, object]]]) -> None:
            by_digest.update(fresh)
            if self.cache is not None:
                self.cache.put_many(fresh)
            emitter.drain()

        if self.jobs > 1 and len(shards) > 1:
            # Shard workers get their own handle on the store's trace
            # section (per-process global trace cache + WAL-safe files),
            # so a replay-engine campaign captures each kernel once
            # *globally*: the first worker to capture persists the trace
            # and every other process replays it from disk.
            store_directory = getattr(self.cache, "directory", None)
            initializer = (
                _attach_worker_trace_store
                if hasattr(self.cache, "get_trace") and store_directory is not None
                else None
            )
            initargs = (str(store_directory),) if initializer is not None else ()
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(shards)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = [pool.submit(execute_shard, shard) for shard in shards]
                # Absorb out-of-order completions in shard order so cache
                # writes and the stream see the exact serial sequence.
                buffered: Dict[int, List[Tuple[str, Dict[str, object]]]] = {}
                next_shard = 0
                for future in as_completed(futures):
                    index, fresh = future.result()
                    buffered[index] = fresh
                    while next_shard in buffered:
                        absorb(buffered.pop(next_shard))
                        next_shard += 1
        else:
            for shard in shards:
                _, fresh = execute_shard(shard)
                absorb(fresh)


def summarize_records(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate result records into the deterministic summary payload.

    Records are bucketed per *platform* — the (preset, arbiter) pair — so an
    arbiter sweep never merges delays measured under different arbitration
    policies.  Each bucket carries what the report layer renders: aggregated
    contender histograms (split by workload kind), bus utilisation, and the
    worst observed contention delay next to the analytical ``ubd`` — which
    Equation 1 only defines for round-robin and FIFO arbitration, so other
    arbiters report ``analytical_ubd: null``.
    """
    if not records:
        raise MethodologyError("cannot summarise an empty campaign")
    per_platform: Dict[str, Dict[str, object]] = {}
    for record in records:
        preset = record["preset"]
        arbiter = record["arbiter"]
        # Records predating the topology field describe bus_only platforms.
        topology = record.get("topology", "bus_only")
        # The historical bucket key stays "<preset>/<arbiter>" for the
        # paper's single-bus platform; chained topologies append the
        # topology *and* its bank-queue arbitration, so delays measured on
        # different resource chains or bank policies never merge.
        key = f"{preset}/{arbiter}"
        mem_arbitration = None
        response_arbitration = None
        if topology != "bus_only":
            mem_arbitration = record["config"]["topology"]["mem_arbitration"]
            key = f"{key}/{topology}/{mem_arbitration}"
            if topology == "split_bus":
                # The response channel is its own arbitrated stage; its
                # policy separates buckets like the bank policy does.
                response_arbitration = record["config"]["topology"].get(
                    "response_arbitration", "fifo"
                )
                key = f"{key}/{response_arbitration}"
        bucket = per_platform.get(key)
        if bucket is None:
            config = config_from_dict(record["config"])
            bucket = per_platform[key] = {
                "preset": preset,
                "arbiter": arbiter,
                "topology": topology,
                "mem_arbitration": mem_arbitration,
                "response_arbitration": response_arbitration,
                "runs": 0,
                "analytical_ubd": (config.ubd if arbiter in FAIR_ARBITRATION_POLICIES else None),
                # Like analytical_ubd, only reported where the fair-round
                # reasoning holds — has_composable_bounds checks *both*
                # stages: the bus arbiter and the bank-queue arbiter.
                "end_to_end_ubd": (
                    config.end_to_end_ubd
                    if config.topology.has_memory_queues
                    and config.has_composable_bounds
                    else None
                ),
                # The per-resource decomposition of end_to_end_ubd: what the
                # aggregated stage_worst_case fields are checked against.
                "analytical_terms": (
                    dict(config.ubd_terms) if config.has_composable_bounds else None
                ),
                "_utilisations": [],
            }
        bucket["runs"] += 1
        bucket["_utilisations"].append(record["metrics"]["bus_utilisation"])
        kind_bucket = bucket.setdefault(
            record["kind"],
            {"runs": 0, "aggregated_contenders": {}, "total_requests": 0},
        )
        kind_bucket["runs"] += 1
        kind_bucket["total_requests"] += record["metrics"]["contender_total_requests"]
        aggregated = kind_bucket["aggregated_contenders"]
        for bin_key, count in record["metrics"]["contender_histogram"].items():
            aggregated[bin_key] = aggregated.get(bin_key, 0) + count
        if record["kind"] == KIND_RSK:
            delay = record["metrics"].get("max_contention_delay")
            if delay is not None:
                previous = kind_bucket.get("max_contention_delay", 0)
                kind_bucket["max_contention_delay"] = max(previous, delay)
            slowdown = record["metrics"].get("slowdown")
            if slowdown is not None:
                kind_bucket["max_slowdown"] = max(kind_bucket.get("max_slowdown", 0), slowdown)
            stage_worst = record["metrics"].get("stage_worst_case")
            if stage_worst:
                aggregated_stages = kind_bucket.setdefault("stage_worst_case", {})
                for stage, worst in stage_worst.items():
                    aggregated_stages[stage] = max(aggregated_stages.get(stage, 0), worst)

    for bucket in per_platform.values():
        utilisations = bucket.pop("_utilisations")
        bucket["mean_bus_utilisation"] = sum(utilisations) / len(utilisations)
        synthetic = bucket.get(KIND_SYNTHETIC)
        if synthetic is not None:
            synthetic["fraction_with_at_most_1"] = _fraction_at_most(
                synthetic["aggregated_contenders"], 1
            )
    return {
        "schema": SCHEMA_VERSION,
        "total_runs": len(records),
        "presets": sorted({record["preset"] for record in records}),
        "arbiters": sorted({record["arbiter"] for record in records}),
        "topologies": sorted({record.get("topology", "bus_only") for record in records}),
        "kinds": {
            kind: sum(1 for record in records if record["kind"] == kind)
            for kind in sorted({record["kind"] for record in records})
        },
        "per_platform": per_platform,
    }


def _fraction_at_most(aggregated: Dict[str, int], contenders: int) -> float:
    total = sum(aggregated.values())
    if total == 0:
        return 0.0
    matching = sum(count for key, count in aggregated.items() if int(key) <= contenders)
    return matching / total
