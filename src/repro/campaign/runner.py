"""Parallel campaign execution with deterministic results.

:func:`execute_run` turns one :class:`~repro.campaign.spec.RunDescriptor`
into a plain-JSON result record; :class:`ParallelRunner` fans a sequence of
descriptors out over a ``concurrent.futures.ProcessPoolExecutor`` (or runs
them in-process for ``jobs=1``) and reassembles the records in descriptor
order.  Because every record is a pure function of its descriptor and the
assembly order is fixed, a parallel campaign's artifacts are bit-identical
to a serial campaign's — the only difference is wall-clock time.

A :class:`~repro.campaign.cache.ResultCache` can be attached so repeated
campaigns only simulate cache misses; :class:`CampaignOutcome.stats` reports
how many runs were simulated versus served from the cache.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.contention import (
    DECOMPOSITION_STAGES,
    ContenderHistogram,
    contender_histogram,
    contention_histogram,
    latency_decomposition,
)
from ..config import FAIR_ARBITRATION_POLICIES, config_from_dict
from ..errors import AnalysisError, MethodologyError
from ..kernels.rsk import build_rsk
from ..methodology.experiment import ExperimentRunner
from ..methodology.workloads import WorkloadRun, run_single_workload
from ..sim.isa import Program
from .cache import ResultCache
from .spec import KIND_RSK, KIND_SYNTHETIC, SCHEMA_VERSION, RunDescriptor


def execute_run(descriptor: RunDescriptor) -> Dict[str, object]:
    """Simulate one descriptor and return its JSON-serialisable result record.

    This is the worker function shipped to pool processes; it must stay a
    module-level callable so descriptors and results pickle cleanly.  The
    returned record intentionally contains no wall-clock or host metadata —
    it is the cacheable, machine-independent part of a campaign result.  The
    simulation engine is stripped from the embedded configuration for the
    same reason it is excluded from the digest: both engines are cycle-exact,
    so artifacts must be byte-identical whichever one produced them.
    """
    config_dict = descriptor.config.to_dict()
    config_dict.pop("engine", None)
    record: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "digest": descriptor.digest(),
        "preset": descriptor.preset,
        "kind": descriptor.kind,
        "arbiter": descriptor.config.bus.arbitration,
        "topology": descriptor.config.topology.name,
        "tasks": list(descriptor.tasks),
        "contenders": descriptor.contenders,
        "observed_core": descriptor.observed_core,
        "iterations": descriptor.iterations,
        "seed": descriptor.seed,
        "config": config_dict,
    }
    if descriptor.kind == KIND_SYNTHETIC:
        record["metrics"] = _synthetic_metrics(descriptor)
    else:
        record["rsk_kind"] = descriptor.rsk_kind
        record["metrics"] = _rsk_metrics(descriptor)
    return record


def _synthetic_metrics(descriptor: RunDescriptor) -> Dict[str, object]:
    run = run_single_workload(
        descriptor.config,
        descriptor.tasks,
        observed_core=descriptor.observed_core,
        observed_iterations=descriptor.iterations,
        seed=descriptor.seed,
    )
    return {
        "execution_time": run.execution_time,
        "bus_utilisation": run.bus_utilisation,
        "contender_histogram": _json_histogram(run.histogram.counts),
        "contender_total_requests": run.histogram.total_requests,
    }


def _rsk_metrics(descriptor: RunDescriptor) -> Dict[str, object]:
    config = descriptor.config
    observed = descriptor.observed_core
    scua = build_rsk(config, observed, kind=descriptor.rsk_kind, iterations=descriptor.iterations)
    contenders: Dict[int, Program] = {
        core: build_rsk(config, core, kind=descriptor.rsk_kind, iterations=None)
        for core in range(len(descriptor.tasks))
        if core != observed
    }
    runner = ExperimentRunner(config)
    isolation, contended = runner.run_pair(scua, contenders, scua_core=observed, trace=True)
    metrics: Dict[str, object] = contended.as_record()
    metrics["isolation"] = isolation.as_record()
    metrics["slowdown"] = contended.slowdown_versus(isolation)
    ready = contender_histogram(contended.trace, observed, config.num_cores)
    metrics["contender_histogram"] = _json_histogram(ready.counts)
    metrics["contender_total_requests"] = ready.total_requests
    try:
        decomposition = latency_decomposition(contended.trace, observed, skip_first=1)
    except AnalysisError:
        # No completed demand request of the observed core (e.g. a pure
        # store run): there is no per-resource decomposition to record.
        pass
    else:
        # Per-resource observed worst cases: the measured-bound fields the
        # summary aggregates against the analytical ``ubd_terms``.
        metrics["memory_requests"] = decomposition.memory_requests
        metrics["stage_worst_case"] = {
            stage: decomposition.max_observed(stage)
            for stage in DECOMPOSITION_STAGES
            if decomposition.histograms.get(stage)
        }
    try:
        delays = contention_histogram(contended.trace, observed, kinds=(descriptor.rsk_kind,))
    except AnalysisError:
        # Store rsk traffic drains through the store buffer; if no request of
        # the requested kind completed there is no delay histogram to report.
        return metrics
    metrics["contention_histogram"] = _json_histogram(delays.counts)
    metrics["max_contention_delay"] = delays.max_observed
    metrics["modal_contention_delay"] = delays.mode
    return metrics


def _json_histogram(counts: Dict[int, int]) -> Dict[str, int]:
    """Render an int-keyed histogram with string keys, sorted for stable JSON."""
    return {str(key): counts[key] for key in sorted(counts)}


def histogram_from_json(counts: Dict[str, int]) -> Dict[int, int]:
    """Invert :func:`_json_histogram` when loading artifacts."""
    return {int(key): value for key, value in counts.items()}


def workload_run_from_record(record: Dict[str, object]) -> WorkloadRun:
    """Rebuild the legacy :class:`WorkloadRun` view from a synthetic record."""
    if record["kind"] != KIND_SYNTHETIC:
        raise MethodologyError(
            f"record {record.get('run_id', '?')} is a {record['kind']!r} run, "
            "not a synthetic workload"
        )
    metrics = record["metrics"]
    histogram = ContenderHistogram(
        counts=histogram_from_json(metrics["contender_histogram"]),
        total_requests=metrics["contender_total_requests"],
        observed_core=record["observed_core"],
        num_cores=record["config"]["num_cores"],
    )
    return WorkloadRun(
        task_names=tuple(record["tasks"]),
        observed_core=record["observed_core"],
        histogram=histogram,
        execution_time=metrics["execution_time"],
        bus_utilisation=metrics["bus_utilisation"],
    )


@dataclass(frozen=True)
class CampaignOutcome:
    """All records of a finished campaign plus execution statistics.

    Attributes:
        records: one result record per descriptor, in descriptor order, each
            carrying its ``run_id``.  Everything here is deterministic.
        stats: how the campaign was executed — jobs, cache hits, wall time.
            This is *timing metadata* and never enters ``results.jsonl``.
    """

    records: Tuple[Dict[str, object], ...]
    stats: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        """Aggregate the records into the ``summary.json`` payload."""
        summary = summarize_records(self.records)
        summary["timing"] = dict(self.stats)
        return summary


class ParallelRunner:
    """Executes run descriptors, optionally in parallel and through a cache.

    Args:
        jobs: worker processes; ``1`` executes in-process (no pool, no
            pickling) and is the reference behaviour the parallel path must
            reproduce bit-for-bit.
        cache: optional content-addressed result cache shared across
            campaigns; hits skip simulation entirely.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None) -> None:
        if jobs < 1:
            raise MethodologyError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache

    def run(self, descriptors: Sequence[RunDescriptor]) -> CampaignOutcome:
        """Execute ``descriptors`` and return their records in input order."""
        started = time.perf_counter()
        digests = [descriptor.digest() for descriptor in descriptors]
        by_digest: Dict[str, Dict[str, object]] = {}
        pending: List[Tuple[str, RunDescriptor]] = []
        pending_digests: set = set()
        cached_hits = 0
        for digest, descriptor in zip(digests, descriptors):
            if digest in by_digest or digest in pending_digests:
                continue
            record = self.cache.get(digest) if self.cache is not None else None
            if record is not None and record.get("schema") == SCHEMA_VERSION:
                by_digest[digest] = record
                cached_hits += 1
            else:
                pending.append((digest, descriptor))
                pending_digests.add(digest)

        simulated = len(pending)
        if self.jobs > 1 and len(pending) > 1:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                fresh = list(pool.map(execute_run, [descriptor for _, descriptor in pending]))
        else:
            fresh = [execute_run(descriptor) for _, descriptor in pending]
        for (digest, _), record in zip(pending, fresh):
            by_digest[digest] = record
            if self.cache is not None:
                self.cache.put(digest, record)

        records = []
        for digest, descriptor in zip(digests, descriptors):
            record = dict(by_digest[digest])
            record["run_id"] = descriptor.run_id
            records.append(record)
        stats = {
            "runs": len(records),
            "unique_runs": len(by_digest),
            "simulated": simulated,
            "cached": cached_hits,
            "jobs": self.jobs,
            "elapsed_seconds": time.perf_counter() - started,
        }
        return CampaignOutcome(records=tuple(records), stats=stats)


def summarize_records(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate result records into the deterministic summary payload.

    Records are bucketed per *platform* — the (preset, arbiter) pair — so an
    arbiter sweep never merges delays measured under different arbitration
    policies.  Each bucket carries what the report layer renders: aggregated
    contender histograms (split by workload kind), bus utilisation, and the
    worst observed contention delay next to the analytical ``ubd`` — which
    Equation 1 only defines for round-robin and FIFO arbitration, so other
    arbiters report ``analytical_ubd: null``.
    """
    if not records:
        raise MethodologyError("cannot summarise an empty campaign")
    per_platform: Dict[str, Dict[str, object]] = {}
    for record in records:
        preset = record["preset"]
        arbiter = record["arbiter"]
        # Records predating the topology field describe bus_only platforms.
        topology = record.get("topology", "bus_only")
        # The historical bucket key stays "<preset>/<arbiter>" for the
        # paper's single-bus platform; chained topologies append the
        # topology *and* its bank-queue arbitration, so delays measured on
        # different resource chains or bank policies never merge.
        key = f"{preset}/{arbiter}"
        mem_arbitration = None
        response_arbitration = None
        if topology != "bus_only":
            mem_arbitration = record["config"]["topology"]["mem_arbitration"]
            key = f"{key}/{topology}/{mem_arbitration}"
            if topology == "split_bus":
                # The response channel is its own arbitrated stage; its
                # policy separates buckets like the bank policy does.
                response_arbitration = record["config"]["topology"].get(
                    "response_arbitration", "fifo"
                )
                key = f"{key}/{response_arbitration}"
        bucket = per_platform.get(key)
        if bucket is None:
            config = config_from_dict(record["config"])
            bucket = per_platform[key] = {
                "preset": preset,
                "arbiter": arbiter,
                "topology": topology,
                "mem_arbitration": mem_arbitration,
                "response_arbitration": response_arbitration,
                "runs": 0,
                "analytical_ubd": (config.ubd if arbiter in FAIR_ARBITRATION_POLICIES else None),
                # Like analytical_ubd, only reported where the fair-round
                # reasoning holds — has_composable_bounds checks *both*
                # stages: the bus arbiter and the bank-queue arbiter.
                "end_to_end_ubd": (
                    config.end_to_end_ubd
                    if config.topology.has_memory_queues
                    and config.has_composable_bounds
                    else None
                ),
                # The per-resource decomposition of end_to_end_ubd: what the
                # aggregated stage_worst_case fields are checked against.
                "analytical_terms": (
                    dict(config.ubd_terms) if config.has_composable_bounds else None
                ),
                "_utilisations": [],
            }
        bucket["runs"] += 1
        bucket["_utilisations"].append(record["metrics"]["bus_utilisation"])
        kind_bucket = bucket.setdefault(
            record["kind"],
            {"runs": 0, "aggregated_contenders": {}, "total_requests": 0},
        )
        kind_bucket["runs"] += 1
        kind_bucket["total_requests"] += record["metrics"]["contender_total_requests"]
        aggregated = kind_bucket["aggregated_contenders"]
        for bin_key, count in record["metrics"]["contender_histogram"].items():
            aggregated[bin_key] = aggregated.get(bin_key, 0) + count
        if record["kind"] == KIND_RSK:
            delay = record["metrics"].get("max_contention_delay")
            if delay is not None:
                previous = kind_bucket.get("max_contention_delay", 0)
                kind_bucket["max_contention_delay"] = max(previous, delay)
            slowdown = record["metrics"].get("slowdown")
            if slowdown is not None:
                kind_bucket["max_slowdown"] = max(kind_bucket.get("max_slowdown", 0), slowdown)
            stage_worst = record["metrics"].get("stage_worst_case")
            if stage_worst:
                aggregated_stages = kind_bucket.setdefault("stage_worst_case", {})
                for stage, worst in stage_worst.items():
                    aggregated_stages[stage] = max(aggregated_stages.get(stage, 0), worst)

    for bucket in per_platform.values():
        utilisations = bucket.pop("_utilisations")
        bucket["mean_bus_utilisation"] = sum(utilisations) / len(utilisations)
        synthetic = bucket.get(KIND_SYNTHETIC)
        if synthetic is not None:
            synthetic["fraction_with_at_most_1"] = _fraction_at_most(
                synthetic["aggregated_contenders"], 1
            )
    return {
        "schema": SCHEMA_VERSION,
        "total_runs": len(records),
        "presets": sorted({record["preset"] for record in records}),
        "arbiters": sorted({record["arbiter"] for record in records}),
        "topologies": sorted({record.get("topology", "bus_only") for record in records}),
        "kinds": {
            kind: sum(1 for record in records if record["kind"] == kind)
            for kind in sorted({record["kind"] for record in records})
        },
        "per_platform": per_platform,
    }


def _fraction_at_most(aggregated: Dict[str, int], contenders: int) -> float:
    total = sum(aggregated.values())
    if total == 0:
        return 0.0
    matching = sum(count for key, count in aggregated.items() if int(key) <= contenders)
    return matching / total
