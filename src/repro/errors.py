"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """An architecture or experiment configuration is invalid.

    Raised eagerly at construction time (for example, a cache whose size is
    not a multiple of ``line_size * ways``, or a TDMA arbiter with a
    non-positive slot length) so that misconfiguration never silently
    produces meaningless timing results.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent or impossible state.

    This signals a bug in the model (for instance, a bus grant issued while
    the bus is busy) rather than a user mistake, and should never occur in
    normal operation.
    """


class ProgramError(ReproError):
    """A program/kernel description is malformed.

    Examples: an instruction with a negative latency, a memory operation
    whose address is not line aligned when alignment is required, or an
    empty loop body.
    """


class AnalysisError(ReproError):
    """An analysis step could not produce a result.

    Raised, for example, when a saw-tooth period cannot be detected because
    the ``k`` sweep does not cover at least one full period, or when a trace
    contains no requests for the observed core.
    """


class MethodologyError(ReproError):
    """A methodology-level experiment is inconsistent.

    Raised when experiment inputs are contradictory, such as asking for more
    contender kernels than available cores, or requesting confidence checks
    without enabling the performance monitoring counters.
    """


class ServiceError(ReproError):
    """The campaign service (daemon, worker, or client) hit a protocol or
    lifecycle problem.

    Examples: a frame that is not valid JSON, a protocol version mismatch,
    a request for an unknown job id, or a client command against a daemon
    that is already draining.  Simulation-level failures inside a job are
    *not* service errors — they mark the job ``failed`` and surface through
    ``status``/``results`` instead.
    """


class AuditError(ReproError):
    """An audit could not be assembled or its artifacts are malformed.

    Raised when an audit target cannot be resolved (not a preset, not a
    configuration file, not a campaign directory), or when a ``flags.json``
    payload fails schema validation on load.  Individual audit *checks*
    never raise this — a failing check is a finding with a ``fail`` verdict,
    not an error.
    """
