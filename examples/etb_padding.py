#!/usr/bin/env python3
"""Using the derived bound: execution-time bounds for an automotive-style task.

The end product of the methodology is a per-request contention bound that a
timing-analysis flow consumes (Section 4.3):

* MBTA pads the isolation measurement of a task with ``nr * ubdm``;
* STA adds ``ubdm`` to each accounted bus access.

This example derives three bounds for a bus-heavy synthetic task (a stand-in
for an EEMBC Autobench kernel) on the reference platform and checks which of
the resulting execution-time bounds (ETBs) actually cover a contended run:

* the naive ``det/nr`` estimate — underestimates and may produce an ETB that
  a worst-case-aligned run could exceed;
* the rsk-nop methodology's ``ubdm`` — equals the true ``ubd``;
* the analytical ``ubd`` — the reference.

Run it with::

    python examples/etb_padding.py
"""

from __future__ import annotations

from repro import reference_config
from repro.kernels.synthetic import build_synthetic_kernel
from repro.methodology.etb import build_etb_report
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.naive import NaiveUbdEstimator
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table


def main() -> None:
    config = reference_config()
    runner = ExperimentRunner(config)

    task = build_synthetic_kernel(config, "cacheb", 0, iterations=20)
    print(f"Task under analysis: {task.summary()}")

    isolation = runner.run_isolation(task)
    contended = runner.run_against_rsk(task)
    print(
        f"Isolation: {isolation.execution_time} cycles, {isolation.bus_requests} bus requests; "
        f"against 3 rsk: {contended.execution_time} cycles"
    )
    print()

    print("Deriving the per-request bounds (a few minutes of simulated runs)...")
    naive = NaiveUbdEstimator(config).estimate(task)
    methodology = UbdEstimator(config, k_max=60, iterations=40).run()

    bounds = [
        ("naive det/nr (this task as scua)", naive.ubdm),
        ("rsk-nop methodology", float(methodology.ubdm)),
        ("analytical ubd", float(config.ubd)),
    ]
    rows = []
    for label, bound in bounds:
        report = build_etb_report(
            task.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=bound,
            observed_contended_time=contended.execution_time,
        )
        rows.append(
            [
                label,
                f"{bound:.2f}",
                report.pad,
                report.etb,
                "yes" if report.covers_observation else "NO",
            ]
        )
    print()
    print(render_table(["bound", "cycles/request", "pad", "ETB", "covers contended run"], rows))
    print()
    print(
        "The naive bound reflects whatever alignment the measurement happened to\n"
        "observe; padding with the rsk-nop bound (= the analytical ubd) is what\n"
        "makes the resulting ETB trustworthy for any co-runner behaviour."
    )


if __name__ == "__main__":
    main()
