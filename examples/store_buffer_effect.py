#!/usr/bin/env python3
"""The store-buffer effect on the measured slowdown (Section 5.3, Figure 7(b)).

Write-through stores retire into the per-core store buffer, so the core only
feels bus contention when the buffer is full.  Sweeping the nop count of a
*store* rsk-nop therefore shows a single decreasing stretch of slowdown — up
to roughly one contended drain interval — and exactly zero afterwards, in
contrast with the periodic saw-tooth of the load variant.

Run it with::

    python examples/store_buffer_effect.py
"""

from __future__ import annotations

from repro import reference_config
from repro.methodology.ubd import UbdEstimator
from repro.report.tables import render_table


def sweep(config, kind: str, ks, iterations: int = 30):
    estimator = UbdEstimator(
        config, instruction_type=kind, iterations=iterations, auto_extend=False
    )
    return [point.dbus for point in estimator.sweep(ks)]


def main() -> None:
    config = reference_config()
    drain_interval = config.ubd + config.bus_service_l2_hit
    ks = list(range(1, drain_interval + 8))

    print(f"Platform: {config.name}, ubd = {config.ubd}, store buffer of "
          f"{config.store_buffer.entries} entries")
    print("Sweeping rsk-nop(load, k) and rsk-nop(store, k) against 3 rsk each...")
    load_dbus = sweep(config, "load", ks)
    store_dbus = sweep(config, "store", ks)

    rows = [[k, load, store] for k, load, store in zip(ks, load_dbus, store_dbus)]
    print()
    print(render_table(["k (nops)", "dbus load (cycles)", "dbus store (cycles)"], rows))

    first_zero = next((k for k, value in zip(ks, store_dbus) if value == 0), None)
    print()
    print(
        f"The load curve re-arms after each ubd = {config.ubd} nops (the saw-tooth\n"
        f"the methodology exploits), while the store curve falls to zero at k = "
        f"{first_zero}\nonce the buffer drains faster than the core produces stores."
    )


if __name__ == "__main__":
    main()
