#!/usr/bin/env python3
"""Observe the synchrony effect (Section 3 / Figure 6 of the paper).

The example contrasts two experiments on the reference NGMP-like platform:

* an EEMBC-like synthetic task running against three other synthetic tasks —
  its bus requests rarely find any contender, so the measured contention says
  nothing about the worst case;
* a load rsk running against three load rsk — the bus saturates, round robin
  locks into a time-multiplexed schedule, and (nearly) every request suffers
  exactly the same contention delay ``ubd - delta_rsk``, which is *below* the
  real upper bound ``ubd``.

Run it with::

    python examples/synchrony_effect.py
"""

from __future__ import annotations

from repro import reference_config, variant_config
from repro.analysis.contention import contention_histogram, injection_time_histogram
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.workloads import run_rsk_reference_workload, run_workload_campaign
from repro.report.histogram import render_histogram


def eembc_like_campaign() -> None:
    config = reference_config()
    print("== EEMBC-like workloads (8 random 4-task mixes) ==")
    campaign = run_workload_campaign(config, num_workloads=8, observed_iterations=20, seed=2015)
    print(
        render_histogram(
            campaign.aggregated_counts(),
            title="Ready contenders when the observed task accesses the bus",
            label="contenders",
        )
    )
    share = campaign.fraction_with_at_most(1)
    print(f"\n{share:.0%} of requests found the bus empty or with a single contender.\n")


def rsk_against_rsk(config, label: str) -> None:
    print(f"== rsk against 3 rsk on the {label} platform ==")
    runner = ExperimentRunner(config)
    scua = build_rsk(config, 0, iterations=150)
    contended = runner.run_against_rsk(scua, trace=True)
    histogram = contention_histogram(contended.trace, 0)
    deltas = injection_time_histogram(contended.trace, 0)
    print(
        render_histogram(
            histogram.counts,
            title=f"Per-request contention delay (bus utilisation "
            f"{contended.bus_utilisation:.0%})",
            label="gamma",
        )
    )
    modal_delta = max(deltas, key=deltas.get)
    print(
        f"\nInjection time delta_rsk = {modal_delta} cycle(s); "
        f"observed plateau = {histogram.mode} = ubd - delta_rsk, "
        f"while the real ubd is {config.ubd} cycles.\n"
    )


def main() -> None:
    eembc_like_campaign()
    rsk_against_rsk(reference_config(), "ref")
    rsk_against_rsk(variant_config(), "var")
    print(
        "Take-away: saturating the bus is not enough — the synchrony effect pins\n"
        "every request to one alignment, so the straightforward measurement\n"
        "underestimates ubd and the gap depends on the platform's injection time."
    )


if __name__ == "__main__":
    main()
