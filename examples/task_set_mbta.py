#!/usr/bin/env python3
"""End-to-end MBTA flow: derive ubdm once, then bound a whole task set.

This is the complete pipeline an end user of the methodology would run
(Section 4.3 of the paper):

1. derive the per-request contention bound ``ubdm`` with the rsk-nop
   methodology (no bus timing knowledge required);
2. for every task of an automotive-flavoured task set, measure its execution
   time in isolation and its bus request count ``nr`` (from the PMCs);
3. pad each isolation measurement with ``nr * ubdm`` to obtain its
   execution-time bound (ETB);
4. validate each ETB against a run of the task against three rsk — the most
   hostile co-runner behaviour the platform can produce.

Run it with::

    python examples/task_set_mbta.py
"""

from __future__ import annotations

from repro import reference_config, UbdEstimator
from repro.kernels.synthetic import build_synthetic_kernel
from repro.methodology.mbta import TaskSetAnalysis


TASK_NAMES = ("a2time", "canrdr", "rspeed", "tblook", "cacheb")


def main() -> None:
    config = reference_config()

    print("Step 1: deriving ubdm with the rsk-nop methodology...")
    methodology = UbdEstimator(config, k_max=60, iterations=40).run()
    print(f"  {methodology.summary()}")
    print()

    print("Step 2-4: analysing the task set and validating the bounds...")
    tasks = [
        build_synthetic_kernel(config, name, 0, iterations=10) for name in TASK_NAMES
    ]
    analysis = TaskSetAnalysis(config, ubdm=methodology.ubdm, validate_against_rsk=True)
    result = analysis.analyse(tasks)

    print()
    print(result.as_table())
    print()
    if result.all_bounds_hold:
        print("Every padded bound covers the observed worst co-runner behaviour.")
    else:
        print("WARNING: at least one bound was exceeded — investigate before relying on it.")


if __name__ == "__main__":
    main()
