#!/usr/bin/env python3
"""Walkthrough: run a campaign, then reload and re-render its JSON artifacts.

The campaign engine (``repro.campaign``) persists every campaign as two
files — ``results.jsonl`` (one record per run) and ``summary.json`` (the
aggregated view; schema in DESIGN.md, "Campaign artifact schema").  This
example shows the full round trip:

1. declare a small campaign grid with :class:`~repro.campaign.CampaignSpec`;
2. execute it with :class:`~repro.campaign.ParallelRunner` through a
   content-addressed result cache and write the artifacts;
3. *forget everything* and reload the artifacts from disk;
4. re-render the report and recompute the summary from the raw records,
   without a single new simulation.

Run it with::

    python examples/campaign_artifacts.py [output-dir]

Run it twice: the second invocation's campaign is served entirely from the
cache (``0 simulated``).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    ParallelRunner,
    ResultCache,
    load_campaign,
    summarize_records,
    write_campaign_artifacts,
)
from repro.report.campaign import render_campaign_summary


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "out/example-campaign")

    # 1. Declare the grid: one preset, two arbiters, four random workloads
    #    each plus the rsk reference run -> 2 * (4 + 1) = 10 runs.
    spec = CampaignSpec(
        presets=("small",),
        arbiters=("round_robin", "tdma"),
        num_workloads=4,
        iterations=10,
        rsk_iterations=50,
    )
    descriptors = spec.expand()
    print(f"Campaign grid: {len(descriptors)} runs "
          f"({spec.num_workloads} workloads + rsk reference, per arbiter)")

    # 2. Execute through a cache and persist the artifacts.
    runner = ParallelRunner(jobs=2, cache=ResultCache(out_dir / "cache"))
    outcome = runner.run(descriptors)
    stats = outcome.stats
    print(f"Executed: {stats['simulated']} simulated, "
          f"{stats['cached']} from cache, jobs={stats['jobs']}")
    artifacts = write_campaign_artifacts(outcome, out_dir)
    print(f"Artifacts: {artifacts.results_path}, {artifacts.summary_path}")
    print()

    # 3. Reload from disk, as a later analysis session would.
    records, summary = load_campaign(artifacts.directory)
    print(f"Reloaded {len(records)} records; "
          f"presets={summary['presets']}, arbiters={summary['arbiters']}")
    print()

    # 4a. Re-render the saved summary.
    print(render_campaign_summary(summary))
    print()

    # 4b. Or recompute the aggregation from the raw records — the summary
    #     (minus its timing section) is a pure function of results.jsonl.
    recomputed = summarize_records(records)
    stored = {key: value for key, value in summary.items() if key != "timing"}
    assert recomputed == stored, "summary.json must match its records"
    print("Recomputed summary from raw records: matches summary.json")

    # Records are plain dictionaries, so ad-hoc analysis is one loop away —
    # here, the paper's arbiter contrast: the Equation 1 bound holds under
    # round robin, while TDMA's worst case grows to a full TDMA round (the
    # summary reports analytical_ubd: null there, since Equation 1 only
    # covers round-robin and FIFO arbitration).
    for key in sorted(summary["per_platform"]):
        bucket = summary["per_platform"][key]
        rsk = bucket.get("rsk")
        if not rsk:
            continue
        ubd = bucket["analytical_ubd"]
        print(
            f"{bucket['preset']} under {bucket['arbiter']}: worst contention "
            f"delay {rsk['max_contention_delay']} cycles "
            f"(analytical ubd: {'n/a' if ubd is None else ubd})"
        )


if __name__ == "__main__":
    main()
