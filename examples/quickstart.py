#!/usr/bin/env python3
"""Quickstart: derive the round-robin upper-bound delay on an NGMP-like multicore.

This example walks through the whole methodology on the paper's reference
platform without assuming any knowledge of the bus timing:

1. measure ``delta_nop`` with a nop-only kernel;
2. sweep ``rsk-nop(load, k)`` against three rsk contenders and record the
   slowdown ``dbus(k)`` versus isolation;
3. read the saw-tooth period of ``dbus(k)`` — that period, converted to
   cycles, is the measurement-based upper-bound delay ``ubdm``;
4. check the confidence conditions (bus saturation, delta_nop, coverage).

Run it with::

    python examples/quickstart.py

Expected outcome: ``ubdm = 27`` cycles, matching the analytical
``ubd = (Nc - 1) * lbus = 3 * 9`` that the simulator was configured with —
but derived purely from "measurements", as one would do on a COTS part.
"""

from __future__ import annotations

from repro import reference_config, UbdEstimator
from repro.report.tables import render_series


def main() -> None:
    config = reference_config()
    print("Platform under analysis:")
    for key, value in config.describe().items():
        print(f"  {key:22} {value}")
    print()

    print("Running the rsk-nop methodology (this simulates a few hundred runs)...")
    estimator = UbdEstimator(config, k_max=60, iterations=40)
    result = estimator.run()

    print()
    print("Measured per-nop latency:"
          f" {result.delta_nop.cycles_per_nop:.3f} cycles (rounded to {result.delta_nop.rounded})")
    print(f"Detected saw-tooth period: {result.period.summary()}")
    print(f"=> ubdm = {result.ubdm} cycles (analytical ubd = {config.ubd})")
    print()
    print("Confidence checks:")
    print(result.confidence.summary())
    print()
    print("Slowdown dbus(k) for the first period and a bit more:")
    limit = result.period.period_k + 5
    print(render_series(result.ks[:limit], result.dbus_values[:limit], "k (nops)", "dbus (cycles)"))


if __name__ == "__main__":
    main()
