#!/usr/bin/env python3
"""The COTS scenario: derive ubd on a platform whose bus timing is unknown.

Here the "target processor" is built with parameters the analysis pretends
not to know (a different core count, bus transfer time and L2 latency than
the NGMP defaults).  The only assumptions, as in Section 4.3 of the paper,
are that the bus arbitration is round robin and that load instructions can
generate bus requests.

The estimator auto-extends its nop sweep until it has covered two saw-tooth
periods, so it needs no prior guess of the bound's magnitude.  At the end the
script reveals the hidden analytical value and compares.

Run it with::

    python examples/unknown_platform.py
"""

from __future__ import annotations

from repro import UbdEstimator
from repro.config import ArchConfig, BusConfig, CacheConfig, L2Config
from repro.methodology.naive import NaiveUbdEstimator
from repro.report.tables import render_series


def build_mystery_platform() -> ArchConfig:
    """A 6-core part with a slower bus — nothing like the NGMP defaults."""
    return ArchConfig(
        name="mystery-cots",
        num_cores=6,
        il1=CacheConfig(size_bytes=8 * 1024, ways=2, hit_latency=2),
        dl1=CacheConfig(size_bytes=8 * 1024, ways=2, hit_latency=2),
        l2=L2Config(
            cache=CacheConfig(size_bytes=384 * 1024, ways=6, line_size=32, hit_latency=4)
        ),
        bus=BusConfig(transfer_latency=2),
    )


def main() -> None:
    config = build_mystery_platform()
    print("Analysing a COTS-style platform with undocumented bus timing...")
    print(f"  cores: {config.num_cores}, arbitration: {config.bus.arbitration} "
          "(the only facts the methodology relies on)")
    print()

    estimator = UbdEstimator(config, k_max=20, iterations=30, auto_extend=True)
    result = estimator.run()

    print(f"Measured delta_nop: {result.delta_nop.rounded} cycle(s) per nop")
    print(f"Sweep covered k = {result.ks[0]} .. {result.ks[-1]} "
          "(auto-extended until two periods were visible)")
    print(f"Detected period:   {result.period.summary()}")
    print(f"=> ubdm = {result.ubdm} cycles")
    print()
    print("Confidence checks:")
    print(result.confidence.summary())
    print()

    naive = NaiveUbdEstimator(config).estimate_with_rsk_as_scua(iterations=40)
    print(f"For comparison, the naive det/nr estimate is {naive.ubdm:.1f} cycles.")
    print(f"Revealing the hidden ground truth: ubd = {config.ubd} cycles "
          f"((Nc - 1) * lbus = {config.num_cores - 1} * {config.bus_service_l2_hit}).")
    print()
    print("Measured dbus(k) around the first period:")
    limit = min(len(result.ks), result.period.period_k + 4)
    print(render_series(result.ks[:limit], result.dbus_values[:limit], "k", "dbus"))


if __name__ == "__main__":
    main()
