"""Unit tests for the memory controller."""

from __future__ import annotations

import pytest

from repro.config import DramConfig
from repro.errors import SimulationError
from repro.sim.memctrl import MemoryController, PendingRead
from repro.sim.resource import NO_EVENT


class TestReads:
    def test_read_completion_fires_callback(self):
        completions = []
        controller = MemoryController(
            DramConfig(),
            read_callback=lambda pending, cycle: completions.append((pending.addr, cycle)),
        )
        pending = controller.enqueue_read(core_id=0, addr=0x100, cycle=0)
        assert controller.outstanding_reads == 1
        controller.tick(pending.complete_cycle)
        assert completions == [(0x100, pending.complete_cycle)]
        assert controller.outstanding_reads == 0

    def test_callback_not_fired_early(self):
        completions = []
        controller = MemoryController(
            DramConfig(), read_callback=lambda pending, cycle: completions.append(cycle)
        )
        pending = controller.enqueue_read(core_id=0, addr=0x100, cycle=0)
        controller.tick(pending.complete_cycle - 1)
        assert completions == []

    def test_reads_complete_in_time_order(self):
        order = []
        controller = MemoryController(
            DramConfig(num_banks=1), read_callback=lambda pending, cycle: order.append(pending.addr)
        )
        first = controller.enqueue_read(0, 0x000, cycle=0)
        second = controller.enqueue_read(0, 0x040, cycle=0)
        controller.tick(max(first.complete_cycle, second.complete_cycle))
        assert order == [0x000, 0x040]

    def test_missing_callback_raises_on_completion(self):
        controller = MemoryController(DramConfig())
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        with pytest.raises(SimulationError):
            controller.tick(pending.complete_cycle)

    def test_pending_read_kind_is_preserved(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        pending = controller.enqueue_read(1, 0x200, cycle=0, kind="ifetch")
        assert pending.kind == "ifetch"
        assert pending.core_id == 1


class TestWrites:
    def test_write_returns_completion_cycle(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        done = controller.enqueue_write(0x100, cycle=0)
        assert done > 0
        assert controller.stats.writes == 1

    def test_write_occupies_bank_and_delays_read(self):
        controller = MemoryController(DramConfig(num_banks=1), read_callback=lambda p, c: None)
        write_done = controller.enqueue_write(0x000, cycle=0)
        read = controller.enqueue_read(0, 0x040, cycle=0)
        assert read.complete_cycle > write_done - 1


class TestBookkeeping:
    def test_next_activity_is_earliest_completion(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        assert controller.next_activity(0) == NO_EVENT
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        assert controller.next_activity(0) == pending.complete_cycle

    def test_average_read_latency(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        expected = pending.complete_cycle - 0
        assert controller.stats.average_read_latency == pytest.approx(expected)

    def test_average_read_latency_no_reads(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        assert controller.stats.average_read_latency == 0.0

    def test_reset_clears_in_flight(self):
        controller = MemoryController(DramConfig(), read_callback=lambda p, c: None)
        controller.enqueue_read(0, 0x100, cycle=0)
        controller.reset()
        assert controller.outstanding_reads == 0
        assert controller.next_activity(0) == NO_EVENT
