"""Unit tests for architecture configuration objects and presets."""

from __future__ import annotations

import pytest

from repro.config import (
    ArchConfig,
    BusConfig,
    CacheConfig,
    DramConfig,
    L2Config,
    PRESETS,
    StoreBufferConfig,
    get_preset,
    reference_config,
    small_config,
    variant_config,
)
from repro.errors import ConfigurationError


class TestCacheConfig:
    def test_num_sets_reference_dl1(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        assert cache.num_sets == 128

    def test_way_size(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        assert cache.way_size_bytes == 4 * 1024

    def test_same_set_stride(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        assert cache.same_set_stride == 128 * 32

    def test_direct_mapped_allowed(self):
        cache = CacheConfig(size_bytes=1024, ways=1, line_size=32)
        assert cache.num_sets == 32

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=-1, ways=4)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=2, line_size=24)

    def test_rejects_size_not_multiple_of_way_times_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=4, line_size=32)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=2, replacement="random")

    def test_rejects_unknown_write_policy(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=2, write_policy="write_around")

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, ways=2, hit_latency=0)

    def test_fifo_replacement_accepted(self):
        cache = CacheConfig(size_bytes=1024, ways=2, replacement="fifo")
        assert cache.replacement == "fifo"


class TestBusConfig:
    def test_defaults_are_round_robin(self):
        bus = BusConfig()
        assert bus.arbitration == "round_robin"
        assert bus.transfer_latency == 3

    @pytest.mark.parametrize("policy", ["round_robin", "fifo", "fixed_priority", "tdma"])
    def test_all_policies_accepted(self, policy):
        assert BusConfig(arbitration=policy).arbitration == policy

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            BusConfig(arbitration="lottery")

    def test_rejects_zero_transfer_latency(self):
        with pytest.raises(ConfigurationError):
            BusConfig(transfer_latency=0)

    def test_rejects_zero_tdma_slot(self):
        with pytest.raises(ConfigurationError):
            BusConfig(tdma_slot=0)


class TestDramConfig:
    def test_row_hit_latency_composition(self):
        dram = DramConfig(t_cas=9, t_burst=4, controller_overhead=2)
        assert dram.row_hit_latency == 15

    def test_row_miss_latency_composition(self):
        dram = DramConfig(t_rp=9, t_rcd=9, t_cas=9, t_burst=4, controller_overhead=2)
        assert dram.row_miss_latency == 33

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ConfigurationError):
            DramConfig(num_banks=3)

    def test_rejects_zero_timing(self):
        with pytest.raises(ConfigurationError):
            DramConfig(t_cas=0)


class TestStoreBufferConfig:
    def test_default_entries(self):
        assert StoreBufferConfig().entries == 8

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            StoreBufferConfig(entries=0)


class TestArchConfig:
    def test_reference_ubd_is_27(self, ref_config):
        assert ref_config.bus_service_l2_hit == 9
        assert ref_config.ubd == 27

    def test_variant_only_changes_l1_latency(self, ref_config, var_config):
        assert var_config.dl1.hit_latency == 4
        assert var_config.il1.hit_latency == 4
        assert var_config.ubd == ref_config.ubd
        assert var_config.l2 == ref_config.l2

    def test_reference_injection_time(self, ref_config, var_config):
        assert ref_config.expected_rsk_injection_time == 1
        assert var_config.expected_rsk_injection_time == 4

    def test_reference_cache_geometry_matches_paper(self, ref_config):
        assert ref_config.dl1.size_bytes == 16 * 1024
        assert ref_config.dl1.ways == 4
        assert ref_config.dl1.line_size == 32
        assert ref_config.l2.cache.size_bytes == 256 * 1024
        assert ref_config.l2.cache.ways == 4

    def test_l2_way_partitioning_one_way_per_core(self, ref_config):
        ways = [ref_config.l2_ways_for_core(core) for core in range(4)]
        assert ways == [(0,), (1,), (2,), (3,)]

    def test_l2_ways_unpartitioned(self):
        cfg = reference_config(l2=L2Config(partitioned=False))
        assert cfg.l2_ways_for_core(0) == (0, 1, 2, 3)

    def test_l2_ways_invalid_core(self, ref_config):
        with pytest.raises(ConfigurationError):
            ref_config.l2_ways_for_core(7)

    def test_partitioned_l2_needs_enough_ways(self):
        with pytest.raises(ConfigurationError):
            reference_config(num_cores=8)

    def test_with_overrides_returns_new_object(self, ref_config):
        other = ref_config.with_overrides(num_cores=2)
        assert other.num_cores == 2
        assert ref_config.num_cores == 4

    def test_line_size_consistency_enforced(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(
                dl1=CacheConfig(size_bytes=16 * 1024, ways=4, line_size=64),
            )

    def test_describe_contains_key_figures(self, ref_config):
        info = ref_config.describe()
        assert info["ubd"] == 27
        assert info["lbus"] == 9
        assert info["cores"] == 4

    def test_small_config_is_fast_but_valid(self, tiny_config):
        assert tiny_config.num_cores == 3
        assert tiny_config.ubd == (tiny_config.num_cores - 1) * tiny_config.bus_service_l2_hit

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(num_cores=0)

    def test_rejects_zero_nop_latency(self):
        with pytest.raises(ConfigurationError):
            ArchConfig(nop_latency=0)


class TestPresets:
    def test_preset_names(self):
        assert set(PRESETS) == {"ref", "var", "small", "multi_resource", "split_bus"}

    @pytest.mark.parametrize("name", ["ref", "var", "small", "multi_resource", "split_bus"])
    def test_get_preset_builds(self, name):
        assert get_preset(name).name == name

    def test_get_preset_with_overrides(self):
        cfg = get_preset("ref", num_cores=2)
        assert cfg.num_cores == 2

    def test_get_preset_unknown(self):
        with pytest.raises(ConfigurationError):
            get_preset("p4080")

    def test_factories_accept_overrides(self):
        assert reference_config(freq_mhz=100).freq_mhz == 100
        assert variant_config(freq_mhz=100).freq_mhz == 100
        assert small_config(freq_mhz=100).freq_mhz == 100
