"""The split-transaction bus topology and its per-resource bounds.

``split_bus`` models the NGMP bus as its two transaction phases — an
arbitrated request channel feeding per-bank memory queues and a separate
arbitrated response channel returning the data.  These tests pin:

* the differential oracle: with an idle response channel (preloaded L2, so
  no request travels past the L2) the topology reproduces ``bus_only``
  cycle for cycle, on both engines;
* the ``bus_response`` term of ``ArchConfig.ubd_terms`` becoming a measured
  per-resource quantity — ``(Nc-1) * response occupancy`` — instead of the
  shared-bus analytical envelope, and covering every observed
  response-channel wait under the bank-conflict worst case;
* the per-channel PMC surface (``bus`` vs ``bus_response`` sections);
* that a topology registered at runtime runs on *both* engines without any
  engine edit — the acceptance criterion of the event-port redesign.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.analysis.contention import latency_decomposition
from repro.config import (
    BusConfig,
    TopologyConfig,
    small_config,
)
from repro.errors import ConfigurationError
from repro.kernels.rsk import build_bank_conflict_rsk, build_rsk
from repro.methodology.composition import compose_etb_for_config
from repro.methodology.experiment import ExperimentRunner, build_contender_set
from repro.sim.isa import Program
from repro.sim.system import System
from repro.sim.topology import TOPOLOGY_REGISTRY, register_topology


def _split_config(**overrides):
    return small_config(topology=TopologyConfig(name="split_bus"), **overrides)


def _rsk_programs(config, iterations=50, kind="load"):
    programs: List[Optional[Program]] = [None] * config.num_cores
    programs[0] = build_rsk(config, 0, kind=kind, iterations=iterations)
    for core, program in build_contender_set(config, 0, kind=kind).items():
        programs[core] = program
    return programs


def _bank_programs(config, iterations=40, kind="load"):
    programs: List[Optional[Program]] = [
        build_bank_conflict_rsk(config, core, kind=kind, iterations=None)
        for core in range(config.num_cores)
    ]
    programs[0] = build_bank_conflict_rsk(config, 0, kind=kind, iterations=iterations)
    return programs


def _observable(result):
    trace = None
    if result.trace is not None:
        trace = [
            (r.port, r.kind, r.addr, r.ready_cycle, r.grant_cycle, r.complete_cycle)
            for r in result.trace.records
        ]
    return {
        "cycles": result.cycles,
        "done": result.done_cycles,
        "instructions": result.instructions,
        "pmc": result.pmc.as_dict(),
        "trace": trace,
    }


# --------------------------------------------------------------------------- #
# Differential oracle: idle response channel == bus_only, cycle for cycle.
# --------------------------------------------------------------------------- #


class TestIdleResponseMatchesBusOnly:
    """With a preloaded L2 no request travels past the L2, so the response
    channel never carries a transaction and the request channel must behave
    exactly like the paper's single bus (whose response port then never
    contends either).  TDMA is excluded: its slot schedule depends on the
    port count, which legitimately differs between the 5-port shared bus
    and the 4-port request channel."""

    @pytest.mark.parametrize("arbiter", ["round_robin", "fifo", "fixed_priority"])
    @pytest.mark.parametrize("engine", ["stepped", "event"])
    def test_preloaded_rsk_identical(self, arbiter, engine):
        results = {}
        for topology in ("bus_only", "split_bus"):
            config = small_config(
                bus=BusConfig(arbitration=arbiter, transfer_latency=1),
                topology=TopologyConfig(name=topology),
            )
            system = System(
                config,
                _rsk_programs(config, iterations=40),
                trace=True,
                preload_l2=True,
                preload_il1=True,
            )
            results[topology] = _observable(system.run(observed_cores=[0], engine=engine))
        assert results["bus_only"] == results["split_bus"]

    def test_store_traffic_identical(self):
        """Write-through stores stay on the request channel (no response),
        so a store rsk is also response-idle — but only when the stores hit
        the preloaded L2 and never continue to memory."""
        results = {}
        for topology in ("bus_only", "split_bus"):
            config = small_config(topology=TopologyConfig(name=topology))
            system = System(
                config,
                _rsk_programs(config, iterations=40, kind="store"),
                trace=True,
                preload_l2=True,
                preload_il1=True,
            )
            results[topology] = _observable(system.run(observed_cores=[0]))
        assert results["bus_only"] == results["split_bus"]


# --------------------------------------------------------------------------- #
# Per-resource bounds: the response term is measured, tight, and covering.
# --------------------------------------------------------------------------- #


class TestSplitBusBounds:
    def test_terms_structure_and_tightness(self):
        split = _split_config()
        chained = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        others = split.num_cores - 1
        terms = split.ubd_terms
        assert set(terms) == {"bus", "memory", "bus_response"}
        # The request channel carries no responses: plain Equation 1.
        assert terms["bus"] == split.ubd
        # The response channel is its own resource with one pending response
        # per port at most: a fair round costs (Nc-1) occupancies, not the
        # shared-bus envelope of bus_bank_queues.
        assert terms["bus_response"] == others * split.bus_service_response
        envelope = chained.ubd_terms
        assert terms["bus_response"] < envelope["bus_response"]
        assert terms["memory"] == envelope["memory"]
        assert split.end_to_end_ubd < chained.end_to_end_ubd

    @pytest.mark.parametrize("policy", ["tdma", "fixed_priority"])
    def test_unfair_response_channel_has_no_bounds(self, policy):
        config = small_config(
            topology=TopologyConfig(name="split_bus", response_arbitration=policy)
        )
        assert not config.has_composable_bounds
        with pytest.raises(ConfigurationError):
            config.ubd_terms
        assert _split_config().has_composable_bounds

    def test_response_arbitration_validated(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(name="split_bus", response_arbitration="lottery")
        with pytest.raises(ConfigurationError):
            TopologyConfig(name="split_bus", response_tdma_slot=0)

    def test_bank_conflict_waits_covered_per_resource(self):
        """Under the bank-conflict worst case — every core hammering one
        DRAM bank through the split bus — each measured stage must stay
        within its analytical term: the whole point of the per-resource
        decomposition."""
        config = _split_config()
        system = System(config, _bank_programs(config), trace=True, preload_il1=True)
        result = system.run(observed_cores=[0])
        terms = config.ubd_terms
        decomposition = latency_decomposition(result.trace, 0, skip_first=1)
        assert decomposition.memory_requests > 0
        # The bank queues saw real contention, not an incidental wait.
        assert system.memctrl.stats.max_queue_wait > 0
        assert decomposition.max_observed("bus") <= terms["bus"]
        assert decomposition.max_observed("memory") <= terms["memory"]
        assert decomposition.max_observed("bus_response") <= terms["bus_response"]

    def test_composed_etb_covers_bank_conflict_worst_case(self):
        config = _split_config()
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=False)
        scua = build_bank_conflict_rsk(config, 0, iterations=30)
        contenders = {
            core: build_bank_conflict_rsk(config, core, iterations=None)
            for core in range(1, config.num_cores)
        }
        isolation, contended = runner.run_pair(scua, contenders)
        report = compose_etb_for_config(
            config,
            task_name=scua.name,
            isolation_time=isolation.execution_time,
            bus_requests=isolation.bus_requests,
            memory_requests=isolation.result.pmc.dram_accesses,
            observed_contended_time=contended.execution_time,
        )
        assert report.covers_observation, report.summary()
        assert set(report.pads) == {"bus", "memory", "bus_response"}


# --------------------------------------------------------------------------- #
# Per-channel PMCs.
# --------------------------------------------------------------------------- #


class TestPerChannelPmc:
    def test_channels_report_separately_under_memory_traffic(self):
        config = _split_config()
        system = System(config, _bank_programs(config), preload_il1=True)
        result = system.run(observed_cores=[0])
        channels = result.pmc.resources
        assert set(channels) == {"bus", "bus_response"}
        # Every DRAM read produces exactly one response transfer; a couple
        # may still be in flight when the observed core finishes.
        assert 0 < channels["bus_response"].requests <= result.pmc.dram_accesses
        assert result.pmc.dram_accesses - channels["bus_response"].requests <= (
            config.num_cores - 1
        )
        # Per-core counters span both channels (a response is attributed to
        # its origin core), so the demand count is the difference.
        assert channels["bus"].requests == (
            result.pmc.total_requests() - channels["bus_response"].requests
        )
        assert 0 < result.pmc.resource_utilisation("bus_response") <= 1.0
        # The headline utilisation counts the demand channel only: the
        # response channel runs in parallel, and summing overlapping
        # channels would overstate bus utilisation.
        assert result.pmc.bus_busy_cycles == channels["bus"].busy_cycles
        assert result.pmc.bus_utilisation() == result.pmc.resource_utilisation("bus")

    def test_idle_response_channel_leaves_no_section(self):
        config = _split_config()
        system = System(
            config,
            _rsk_programs(config, iterations=10),
            preload_l2=True,
            preload_il1=True,
        )
        result = system.run(observed_cores=[0])
        assert set(result.pmc.resources) == {"bus"}
        assert result.pmc.resource_utilisation("bus_response") == 0.0


# --------------------------------------------------------------------------- #
# A runtime-registered topology runs on both engines, no engine edits.
# --------------------------------------------------------------------------- #


class TestRuntimeTopologyRegistration:
    def test_registered_topology_runs_on_both_engines(self):
        """The event-port acceptance criterion: the engines drive
        ``System.resources`` generically, so registering a new topology is
        sufficient to run it — cycle-exactly — on the stepped oracle *and*
        the event fast path."""
        name = "test_split_mirror"
        register_topology(name, "test-only mirror of split_bus")(
            TOPOLOGY_REGISTRY.require("split_bus").builder
        )
        try:
            config = small_config(topology=TopologyConfig(name=name))
            outcomes = {}
            for engine in ("stepped", "event"):
                system = System(config, _bank_programs(config), trace=True)
                outcomes[engine] = _observable(system.run(observed_cores=[0], engine=engine))
            assert outcomes["stepped"] == outcomes["event"]
        finally:
            TOPOLOGY_REGISTRY.pop(name)
