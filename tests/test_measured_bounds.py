"""The resource-generic measured-bound pipeline (MeasuredBoundPipeline).

The pipeline is PR 4's engine refactor applied one layer up: which measured
``ubdm`` terms exist is read from ``ArchConfig.ubd_terms``, which stressing
kernel drives each resource is read from the rsk registry, and each term's
measurement comes from that resource's own PMC section and trace
decomposition.  These tests pin the contract:

* **the sandwich** — per resource, on every chained topology and fair
  arbiter: observed worst case <= measured ``ubdm`` <= analytical term;
* **the differential oracle** — on ``bus_only`` the pipeline reproduces the
  legacy bus-only ``UbdEstimator`` result exactly;
* **engine parity** — every simulation engine (the stepped oracle, the
  event engine and the codegen generated loops) produces identical reports,
  and the sandwich holds when the pipeline's stress runs themselves execute
  on a fast engine;
* **composition** — the measured terms compose into an end-to-end bound via
  ``methodology/composition.py`` under the same MBTA rules as the
  analytical ones;
* **the gates** — the write-burst check and the memory-term split that make
  analytical-vs-measured gaps attributable.
"""

from __future__ import annotations

from typing import Dict, Tuple

import pytest

from repro.config import ArchConfig, BusConfig, TopologyConfig, small_config
from repro.errors import MethodologyError
from repro.kernels.rsk import build_rsk, build_stress_contender_set, rsk_for_resource
from repro.methodology.experiment import ExperimentRunner
from repro.methodology.ubd import (
    MeasuredBoundPipeline,
    MeasuredBoundReport,
    UbdEstimator,
)

TOPOLOGIES = ("bus_only", "bus_bank_queues", "split_bus")
FAIR_ARBITERS = ("round_robin", "fifo")
#: The fast engines the pipeline's stage checks are repeated on (the
#: stepped oracle is covered by TestEngineParity's differential).
FAST_ENGINES = ("event", "codegen")

#: Shared saw-tooth parameters: k_max covers two periods of the small
#: platform's ubd (6), keeping the sweep deterministic and fast.
SAWTOOTH = dict(k_max=14, iterations=15)

_CACHE: Dict[Tuple[str, str, str], Tuple[ArchConfig, MeasuredBoundReport]] = {}


def report_for(
    topology: str, arbiter: str = "round_robin", engine: str = "event"
) -> Tuple[ArchConfig, MeasuredBoundReport]:
    """Run the pipeline once per (topology, arbiter, engine) and cache it."""
    key = (topology, arbiter, engine)
    if key not in _CACHE:
        config = small_config(
            bus=BusConfig(arbitration=arbiter, transfer_latency=1),
            topology=TopologyConfig(name=topology),
            engine=engine,
        )
        pipeline = MeasuredBoundPipeline(config, stress_iterations=30, **SAWTOOTH)
        _CACHE[key] = (config, pipeline.run())
    return _CACHE[key]


# --------------------------------------------------------------------------- #
# The sandwich: observed <= ubdm <= analytical, per resource.
# --------------------------------------------------------------------------- #


class TestPerResourceSandwich:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("arbiter", FAIR_ARBITERS)
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_every_term_measured_and_sandwiched(self, topology, arbiter, engine):
        config, report = report_for(topology, arbiter, engine)
        assert set(report.terms) == set(config.ubd_terms)
        for resource, term in report.terms.items():
            assert term.covers_observation, term.summary()
            assert term.within_envelope, term.summary()
            assert term.analytical == config.ubd_terms[resource]
        assert report.cross_check.passed, report.cross_check.summary()

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_end_to_end_composes_and_tightens(self, topology):
        config, report = report_for(topology)
        assert report.end_to_end_ubdm == sum(report.measured_terms.values())
        assert report.end_to_end_analytical == config.end_to_end_ubd
        assert report.end_to_end_ubdm <= config.end_to_end_ubd
        assert report.passed, report.summary()

    def test_memory_term_measured_from_its_pmc_section(self):
        _, report = report_for("bus_bank_queues")
        term = report.terms["memory"]
        assert term.method == "stress-run PMC"
        assert term.pmc["max_queue_wait"] == term.ubdm
        assert term.pmc["queue_grants"] > 0
        assert term.requests > 0

    def test_split_bus_response_term_has_its_own_channel_section(self):
        _, report = report_for("split_bus")
        term = report.terms["bus_response"]
        assert term.method == "stress-run PMC"
        assert "max_wait" in term.pmc
        assert term.pmc["requests"] > 0

    def test_round_robin_bus_term_is_the_sawtooth(self):
        """The paper's methodology anchors the bus term — but only where its
        assumption holds (round-robin arbitration)."""
        _, report = report_for("bus_only", "round_robin")
        assert report.terms["bus"].method == "rsk-nop saw-tooth"
        assert report.terms["bus"].ubdm == report.bus_methodology.ubdm

    def test_fifo_bus_term_read_from_channel_pmc(self):
        """A FIFO bus serves in ready order, so dbus(k) repeats with the bus
        occupancy, not the fair round — the saw-tooth under-measures and the
        pipeline must fall back to the channel's PMC worst case instead."""
        config, report = report_for("bus_only", "fifo")
        term = report.terms["bus"]
        assert term.method == "stress-run PMC"
        assert term.ubdm == term.pmc["max_wait"]
        # The saw-tooth genuinely under-measures here; the sandwich would
        # have caught a pipeline that still used it.
        assert report.bus_methodology.ubdm < term.observed_worst_case
        assert term.covers_observation
        assert term.ubdm == config.ubd

    def test_shared_bus_response_envelope_is_trace_measured(self):
        """On bus_bank_queues the responses share the request bus — there is
        no separate channel PMC section, so the term is trace-derived."""
        _, report = report_for("bus_bank_queues")
        assert report.terms["bus_response"].method == "stress-run trace"

    def test_response_contention_observable_with_wider_transfer(self):
        """With a 2-cycle response occupancy the jitter stressor makes the
        response channel's measured worst case strictly positive."""
        config = small_config(
            bus=BusConfig(transfer_latency=2),
            topology=TopologyConfig(name="split_bus"),
        )
        report = MeasuredBoundPipeline(
            config, stress_iterations=60, **SAWTOOTH
        ).run()
        term = report.terms["bus_response"]
        assert term.ubdm > 0
        assert term.within_envelope, term.summary()


# --------------------------------------------------------------------------- #
# Differential oracle: the pipeline reproduces the legacy estimator.
# --------------------------------------------------------------------------- #


class TestLegacyOracle:
    def test_bus_only_reproduces_ubd_estimator_exactly(self):
        config, report = report_for("bus_only")
        legacy = UbdEstimator(config, **SAWTOOTH).run()
        assert list(report.terms) == ["bus"]
        assert report.terms["bus"].ubdm == legacy.ubdm
        assert report.end_to_end_ubdm == legacy.ubdm
        assert report.bus_methodology.ubdm == legacy.ubdm
        assert report.bus_methodology.period.period_k == legacy.period.period_k
        assert report.bus_methodology.points == legacy.points
        assert report.bus_methodology.confidence.passed == legacy.confidence.passed

    def test_bus_only_recovers_the_analytical_ubd(self):
        config, report = report_for("bus_only")
        assert report.terms["bus"].ubdm == config.ubd


# --------------------------------------------------------------------------- #
# Engine parity: the pipeline is engine-agnostic.
# --------------------------------------------------------------------------- #


class TestEngineParity:
    @pytest.mark.parametrize("engine", FAST_ENGINES)
    @pytest.mark.parametrize("topology", ["bus_bank_queues", "split_bus"])
    def test_engines_produce_identical_reports(self, topology, engine):
        _, fast = report_for(topology, engine=engine)
        _, stepped = report_for(topology, engine="stepped")
        assert fast.measured_terms == stepped.measured_terms
        for resource in fast.terms:
            assert fast.terms[resource].as_record() == stepped.terms[resource].as_record()
        assert fast.end_to_end_ubdm == stepped.end_to_end_ubdm


# --------------------------------------------------------------------------- #
# Composition: measured terms feed the MBTA composition rules.
# --------------------------------------------------------------------------- #


class TestMeasuredComposition:
    def test_compose_pads_like_the_analytical_path(self):
        _, report = report_for("split_bus")
        composed = report.compose(
            task_name="t", isolation_time=100, bus_requests=10, memory_requests=4
        )
        terms = report.measured_terms
        expected = (100 + 10 * terms["bus"] + 4 * (terms["memory"] + terms["bus_response"]))
        assert composed.etb == expected
        assert set(composed.pads) == set(terms)

    def test_composed_measured_bound_covers_a_real_contended_run(self):
        """The trustworthiness argument, measured edition: the ETB composed
        from measured terms covers the observed contended execution time of
        the workload class the terms were stressed with."""
        config, report = report_for("split_bus")
        scua = rsk_for_resource("memory").build(config, 0, iterations=20)
        contenders = build_stress_contender_set(config, "memory", 0)
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=True)
        isolation, contended = runner.run_pair(scua, contenders)
        composed = report.compose(
            task_name="bank-stress",
            isolation_time=isolation.execution_time,
            bus_requests=isolation.bus_requests,
            memory_requests=isolation.memory_requests,
            observed_contended_time=contended.execution_time,
        )
        assert composed.covers_observation, composed.summary()
        assert set(composed.pads) == set(report.measured_terms)

    def test_memory_requests_exposed_on_isolation_measurement(self):
        config, _ = report_for("split_bus")
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=True)
        isolation = runner.run_isolation(build_rsk(config, 0, iterations=10))
        assert isolation.memory_requests == isolation.result.pmc.dram_accesses
        assert isolation.as_record()["memory_requests"] == isolation.memory_requests


# --------------------------------------------------------------------------- #
# Gates and splits.
# --------------------------------------------------------------------------- #


class TestGatesAndSplits:
    def test_memory_split_reported_on_chained_topologies(self):
        _, report = report_for("bus_bank_queues")
        split = report.memory_split
        assert split is not None
        assert split.memory_requests > 0
        assert split.queue_wait_max == report.terms["memory"].observed_worst_case
        assert split.service_max > 0
        assert "queue wait" in split.summary()

    def test_memory_split_absent_on_bus_only(self):
        _, report = report_for("bus_only")
        assert report.memory_split is None

    def test_write_burst_gate_passes_for_load_traffic(self):
        _, report = report_for("split_bus")
        assert report.write_burst is not None
        assert report.write_burst.passed, report.write_burst.detail


# --------------------------------------------------------------------------- #
# Validation.
# --------------------------------------------------------------------------- #


class TestPipelineValidation:
    def test_store_traffic_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            MeasuredBoundPipeline(tiny_config, instruction_type="store")

    def test_zero_stress_iterations_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            MeasuredBoundPipeline(tiny_config, stress_iterations=0)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(bus=BusConfig(arbitration="fixed_priority", transfer_latency=1)),
            dict(topology=TopologyConfig(name="bus_bank_queues", mem_arbitration="tdma")),
        ],
    )
    def test_non_composable_platforms_refused(self, overrides):
        config = small_config(**overrides)
        pipeline = MeasuredBoundPipeline(config, **SAWTOOTH)
        with pytest.raises(MethodologyError):
            pipeline.run()
