"""Unit tests for the isolation / contended experiment runner."""

from __future__ import annotations

import pytest

from repro.errors import MethodologyError
from repro.kernels.rsk import build_rsk, build_rsk_nop, rsk_request_count
from repro.methodology.experiment import (
    ExperimentRunner,
    build_contender_set,
)
from repro.sim.isa import Nop, Program


class TestBuildContenderSet:
    def test_one_contender_per_other_core(self, tiny_config):
        contenders = build_contender_set(tiny_config, scua_core=0)
        assert set(contenders) == {1, 2}
        assert all(program.is_infinite for program in contenders.values())

    def test_reference_platform_has_three_contenders(self, ref_config):
        contenders = build_contender_set(ref_config, scua_core=2)
        assert set(contenders) == {0, 1, 3}

    def test_store_contenders(self, tiny_config):
        contenders = build_contender_set(tiny_config, scua_core=0, kind="store")
        assert all("store" in program.name for program in contenders.values())

    def test_invalid_scua_core_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            build_contender_set(tiny_config, scua_core=9)


class TestIsolationRuns:
    def test_isolation_measures_time_and_requests(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=10)
        measurement = runner.run_isolation(scua)
        assert measurement.bus_requests == rsk_request_count(scua)
        per_request = tiny_config.dl1.hit_latency + tiny_config.bus_service_l2_hit
        assert measurement.execution_time == measurement.bus_requests * per_request

    def test_infinite_scua_rejected(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        with pytest.raises(MethodologyError):
            runner.run_isolation(build_rsk(tiny_config, 0))

    def test_invalid_core_rejected(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=1)
        with pytest.raises(MethodologyError):
            runner.run_isolation(scua, scua_core=5)

    def test_budget_exhaustion_raises(self, tiny_config):
        runner = ExperimentRunner(tiny_config, max_cycles=10)
        scua = build_rsk(tiny_config, 0, iterations=100)
        with pytest.raises(MethodologyError):
            runner.run_isolation(scua)


class TestContendedRuns:
    def test_contended_run_is_slower_than_isolation(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=20)
        isolation = runner.run_isolation(scua)
        contended = runner.run_against_rsk(scua)
        assert contended.execution_time > isolation.execution_time
        assert contended.slowdown_versus(isolation) > 0

    def test_contended_run_saturates_the_bus(self, ref_config):
        runner = ExperimentRunner(ref_config)
        scua = build_rsk(ref_config, 0, iterations=30)
        contended = runner.run_against_rsk(scua)
        assert contended.bus_utilisation > 0.95

    def test_trace_collected_on_request(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=5)
        contended = runner.run_against_rsk(scua, trace=True)
        assert contended.trace is not None
        assert len(contended.trace.for_port(0)) > 0

    def test_trace_not_collected_by_default(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=5)
        assert runner.run_against_rsk(scua).trace is None

    def test_scua_core_cannot_also_be_contender(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=5)
        contender = build_rsk(tiny_config, 0)
        with pytest.raises(MethodologyError):
            runner.run_contended(scua, {0: contender})

    def test_contender_core_must_exist(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=5)
        contender = build_rsk(tiny_config, 1)
        with pytest.raises(MethodologyError):
            runner.run_contended(scua, {5: contender})

    def test_slowdown_matches_synchrony_model(self, tiny_config):
        """Per-request slowdown equals gamma(delta_rsk) = ubd - delta_rsk."""
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=30)
        isolation = runner.run_isolation(scua)
        contended = runner.run_against_rsk(scua)
        per_request = contended.slowdown_versus(isolation) / isolation.bus_requests
        expected = tiny_config.ubd - tiny_config.dl1.hit_latency
        assert per_request == pytest.approx(expected, abs=0.2)

    def test_compute_only_scua_barely_slows_down(self, tiny_config):
        runner = ExperimentRunner(tiny_config)
        scua = Program(name="compute", body=tuple(Nop() for _ in range(20)), iterations=20)
        isolation = runner.run_isolation(scua)
        contended = runner.run_against_rsk(scua)
        assert contended.slowdown_versus(isolation) <= 2 * tiny_config.ubd
