"""Unit tests for the per-core store buffer."""

from __future__ import annotations

import pytest

from repro.config import StoreBufferConfig
from repro.errors import SimulationError
from repro.sim.store_buffer import StoreBuffer


def make_buffer(entries: int = 2) -> StoreBuffer:
    return StoreBuffer(StoreBufferConfig(entries=entries), core_id=0)


class TestPush:
    def test_push_until_full(self):
        buffer = make_buffer(entries=2)
        assert buffer.try_push(0x100, 0)
        assert buffer.try_push(0x120, 1)
        assert buffer.is_full()
        assert not buffer.try_push(0x140, 2)
        assert buffer.full_rejections == 1

    def test_occupancy_and_empty(self):
        buffer = make_buffer()
        assert buffer.is_empty()
        buffer.try_push(0x100, 0)
        assert buffer.occupancy() == 1
        assert not buffer.is_empty()

    def test_total_enqueued_counter(self):
        buffer = make_buffer(entries=4)
        for index in range(3):
            buffer.try_push(index * 0x20, index)
        assert buffer.total_enqueued == 3


class TestForwarding:
    def test_forwards_same_line(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        assert buffer.forwards(0x104, line_size=32)

    def test_does_not_forward_other_line(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        assert not buffer.forwards(0x140, line_size=32)

    def test_empty_buffer_never_forwards(self):
        assert not make_buffer().forwards(0x100, line_size=32)


class TestDraining:
    def test_head_ready_then_issue_then_complete(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        entry = buffer.head_ready_to_issue()
        assert entry is not None and entry.addr == 0x100
        buffer.mark_head_issued()
        assert buffer.head_in_flight
        assert buffer.head_ready_to_issue() is None
        popped = buffer.complete_head(10)
        assert popped.addr == 0x100
        assert buffer.is_empty()
        assert buffer.total_drained == 1

    def test_fifo_drain_order(self):
        buffer = make_buffer(entries=3)
        for index in range(3):
            buffer.try_push(index * 0x40, index)
        drained = []
        for _ in range(3):
            buffer.mark_head_issued()
            drained.append(buffer.complete_head(0).addr)
        assert drained == [0x00, 0x40, 0x80]

    def test_issue_without_entries_raises(self):
        with pytest.raises(SimulationError):
            make_buffer().mark_head_issued()

    def test_double_issue_raises(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        buffer.mark_head_issued()
        with pytest.raises(SimulationError):
            buffer.mark_head_issued()

    def test_complete_without_issue_raises(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        with pytest.raises(SimulationError):
            buffer.complete_head(0)

    def test_slot_frees_after_completion(self):
        buffer = make_buffer(entries=1)
        buffer.try_push(0x100, 0)
        assert not buffer.try_push(0x140, 1)
        buffer.mark_head_issued()
        buffer.complete_head(5)
        assert buffer.try_push(0x140, 6)


class TestReset:
    def test_reset_drops_entries(self):
        buffer = make_buffer()
        buffer.try_push(0x100, 0)
        buffer.mark_head_issued()
        buffer.reset()
        assert buffer.is_empty()
        assert not buffer.head_in_flight
