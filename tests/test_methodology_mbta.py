"""Unit tests for the MBTA task-set analysis built on top of ubdm."""

from __future__ import annotations

import pytest

from repro.errors import MethodologyError
from repro.kernels.rsk import build_rsk
from repro.kernels.synthetic import build_synthetic_kernel
from repro.methodology.mbta import TaskSetAnalysis, TaskSetResult
from repro.sim.isa import Nop, Program


def small_task_set(config):
    return [
        build_rsk(config, 0, iterations=10),
        Program(name="compute", body=tuple(Nop() for _ in range(30)), iterations=5),
    ]


class TestTaskAnalysis:
    def test_single_task_fields(self, tiny_config):
        analysis = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd).analyse_task(
            build_rsk(tiny_config, 0, iterations=10)
        )
        assert analysis.requests == 10 * (tiny_config.dl1.ways + 1)
        assert analysis.etb == analysis.isolation_time + analysis.requests * tiny_config.ubd
        assert 0.0 < analysis.contention_share < 1.0

    def test_bound_with_true_ubd_holds_under_validation(self, tiny_config):
        analysis = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd).analyse_task(
            build_rsk(tiny_config, 0, iterations=15)
        )
        assert analysis.report.covers_observation is True

    def test_compute_only_task_gets_zero_pad(self, tiny_config):
        task = Program(name="compute", body=(Nop(),), iterations=20)
        analysis = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd).analyse_task(task)
        assert analysis.requests == 0
        assert analysis.report.pad == 0
        assert analysis.contention_share == 0.0

    def test_validation_can_be_disabled(self, tiny_config):
        analyzer = TaskSetAnalysis(tiny_config, ubdm=3.0, validate_against_rsk=False)
        analysis = analyzer.analyse_task(build_rsk(tiny_config, 0, iterations=5))
        assert analysis.contended_time is None
        assert analysis.report.covers_observation is None


class TestTaskSet:
    def test_analyse_task_set(self, tiny_config):
        result = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd).analyse(
            small_task_set(tiny_config)
        )
        assert isinstance(result, TaskSetResult)
        assert len(result.tasks) == 2
        assert result.all_bounds_hold is True

    def test_all_bounds_hold_is_none_without_validation(self, tiny_config):
        analyzer = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd, validate_against_rsk=False)
        result = analyzer.analyse(small_task_set(tiny_config))
        assert result.all_bounds_hold is None

    def test_underestimated_bound_is_flagged(self, tiny_config):
        """Padding with a too-small ubdm (e.g. from the naive estimator on a
        sparse scua) can fail to cover the contended observation."""
        analyzer = TaskSetAnalysis(tiny_config, ubdm=0.5)
        result = analyzer.analyse([build_rsk(tiny_config, 0, iterations=15)])
        assert result.all_bounds_hold is False

    def test_empty_task_set_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            TaskSetAnalysis(tiny_config, ubdm=1.0).analyse([])

    def test_negative_ubdm_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            TaskSetAnalysis(tiny_config, ubdm=-1.0)

    def test_table_rendering_lists_every_task(self, tiny_config):
        result = TaskSetAnalysis(tiny_config, ubdm=tiny_config.ubd).analyse(
            small_task_set(tiny_config)
        )
        table = result.as_table()
        assert "rsk-load" in table
        assert "compute" in table
        assert "ETB" in table

    def test_synthetic_tasks_analysable_on_reference_platform(self, ref_config):
        tasks = [
            build_synthetic_kernel(ref_config, "canrdr", 0, iterations=5),
            build_synthetic_kernel(ref_config, "rspeed", 0, iterations=5),
        ]
        result = TaskSetAnalysis(ref_config, ubdm=ref_config.ubd).analyse(tasks)
        assert result.all_bounds_hold is True
