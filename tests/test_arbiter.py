"""Unit tests for the bus arbitration policies."""

from __future__ import annotations

import pytest

from repro.config import BusConfig
from repro.errors import ConfigurationError, SimulationError
from repro.sim.arbiter import (
    FifoArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)


class TestRoundRobinArbiter:
    def test_initial_priority_order_starts_at_port_zero(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.priority_order() == [0, 1, 2, 3]

    def test_priority_order_rotates_after_grant(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.notify_grant(0, 1)
        assert arbiter.priority_order() == [2, 3, 0, 1]

    def test_granted_port_becomes_lowest_priority(self):
        """Section 2: after c_i is granted, the order is c_{i+1}, ..., c_i."""
        arbiter = RoundRobinArbiter(4)
        arbiter.notify_grant(0, 2)
        assert arbiter.priority_order()[-1] == 2

    def test_select_picks_highest_priority_pending(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.notify_grant(0, 0)
        assert arbiter.select(1, [0, 2, 3]) == 2

    def test_select_skips_idle_ports(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.notify_grant(0, 0)
        assert arbiter.select(1, [0]) == 0

    def test_select_with_no_pending_raises(self):
        with pytest.raises(SimulationError):
            RoundRobinArbiter(2).select(0, [])

    def test_lowest_priority_waits_for_all_others(self):
        """A port that was just granted is served last among all-pending ports."""
        arbiter = RoundRobinArbiter(4)
        arbiter.notify_grant(0, 1)
        order = []
        pending = {0, 1, 2, 3}
        for _ in range(4):
            winner = arbiter.select(0, sorted(pending))
            order.append(winner)
            arbiter.notify_grant(0, winner)
            pending.discard(winner)
        assert order == [2, 3, 0, 1]

    def test_reset_restores_initial_owner(self):
        arbiter = RoundRobinArbiter(4, initial_owner=2)
        arbiter.notify_grant(0, 0)
        arbiter.reset()
        assert arbiter.last_granted == 2

    def test_invalid_initial_owner_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinArbiter(2, initial_owner=5)

    def test_single_port(self):
        arbiter = RoundRobinArbiter(1)
        assert arbiter.select(0, [0]) == 0

    def test_zero_ports_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundRobinArbiter(0)


class TestFifoArbiter:
    def test_select_with_ready_prefers_oldest(self):
        arbiter = FifoArbiter(3)
        winner = arbiter.select_with_ready(10, [0, 1, 2], [7, 3, 5])
        assert winner == 1

    def test_tie_broken_by_port_index(self):
        arbiter = FifoArbiter(3)
        winner = arbiter.select_with_ready(10, [2, 1], [4, 4])
        assert winner == 1

    def test_plain_select_falls_back_to_port_order(self):
        assert FifoArbiter(3).select(0, [2, 1]) == 1

    def test_empty_pending_raises(self):
        with pytest.raises(SimulationError):
            FifoArbiter(2).select_with_ready(0, [], [])


class TestFixedPriorityArbiter:
    def test_lower_port_wins_by_default(self):
        assert FixedPriorityArbiter(4).select(0, [3, 1, 2]) == 1

    def test_custom_priority_permutation(self):
        arbiter = FixedPriorityArbiter(3, priority=[2, 0, 1])
        assert arbiter.select(0, [0, 1, 2]) == 2

    def test_invalid_priority_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPriorityArbiter(3, priority=[0, 0, 1])

    def test_empty_pending_raises(self):
        with pytest.raises(SimulationError):
            FixedPriorityArbiter(2).select(0, [])


class TestTdmaArbiter:
    def test_slot_owner_rotates(self):
        arbiter = TdmaArbiter(3, slot_cycles=5)
        assert arbiter.slot_owner(0) == 0
        assert arbiter.slot_owner(5) == 1
        assert arbiter.slot_owner(14) == 2
        assert arbiter.slot_owner(15) == 0

    def test_grant_only_at_slot_start(self):
        arbiter = TdmaArbiter(2, slot_cycles=4)
        assert arbiter.select(0, [0]) == 0
        assert arbiter.select(1, [0]) == -1

    def test_non_owner_never_granted_even_if_only_pending(self):
        """TDMA is not work conserving."""
        arbiter = TdmaArbiter(2, slot_cycles=4)
        assert arbiter.select(0, [1]) == -1

    def test_next_grant_opportunity(self):
        arbiter = TdmaArbiter(2, slot_cycles=4)
        assert arbiter.next_grant_opportunity(1, 0) == 8
        assert arbiter.next_grant_opportunity(0, 0) == 0
        assert arbiter.next_grant_opportunity(0, 1) == 4

    def test_zero_slot_rejected(self):
        with pytest.raises(ConfigurationError):
            TdmaArbiter(2, slot_cycles=0)


class TestMakeArbiter:
    @pytest.mark.parametrize(
        "policy, expected",
        [
            ("round_robin", RoundRobinArbiter),
            ("fifo", FifoArbiter),
            ("fixed_priority", FixedPriorityArbiter),
            ("tdma", TdmaArbiter),
        ],
    )
    def test_factory_builds_requested_policy(self, policy, expected):
        arbiter = make_arbiter(BusConfig(arbitration=policy), num_ports=4)
        assert isinstance(arbiter, expected)
        assert arbiter.num_ports == 4

    def test_tdma_slot_taken_from_config(self):
        arbiter = make_arbiter(BusConfig(arbitration="tdma", tdma_slot=12), num_ports=2)
        assert arbiter.slot_cycles == 12
