"""Unit tests for the random multiprogrammed workload campaign (Figure 6(a))."""

from __future__ import annotations

import pytest

from repro.errors import MethodologyError
from repro.kernels.synthetic import synthetic_kernel_names
from repro.methodology.workloads import (
    WorkloadCampaignResult,
    random_workloads,
    run_rsk_reference_workload,
    run_workload_campaign,
)


class TestRandomWorkloads:
    def test_sizes_respected(self):
        workloads = random_workloads(8, 4, seed=1)
        assert len(workloads) == 8
        assert all(len(workload) == 4 for workload in workloads)

    def test_deterministic_for_seed(self):
        assert random_workloads(5, 4, seed=3) == random_workloads(5, 4, seed=3)

    def test_different_seeds_differ(self):
        assert random_workloads(5, 4, seed=3) != random_workloads(5, 4, seed=4)

    def test_names_come_from_pool(self):
        pool = ("a2time", "matrix")
        workloads = random_workloads(4, 3, seed=0, names=pool)
        assert all(name in pool for workload in workloads for name in workload)

    def test_default_pool_is_full_suite(self):
        workloads = random_workloads(30, 4, seed=0)
        used = {name for workload in workloads for name in workload}
        assert used.issubset(set(synthetic_kernel_names()))
        assert len(used) > 5

    def test_invalid_sizes_rejected(self):
        with pytest.raises(MethodologyError):
            random_workloads(0, 4)
        with pytest.raises(MethodologyError):
            random_workloads(4, 0)

    def test_empty_pool_rejected(self):
        with pytest.raises(MethodologyError):
            random_workloads(1, 1, names=())


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self, request):
        from repro.config import reference_config

        return run_workload_campaign(
            reference_config(), num_workloads=3, observed_iterations=8, seed=7
        )

    def test_campaign_runs_requested_number_of_workloads(self, campaign):
        assert isinstance(campaign, WorkloadCampaignResult)
        assert len(campaign.runs) == 3

    def test_every_run_has_a_histogram(self, campaign):
        for run in campaign.runs:
            assert run.histogram.total_requests > 0
            assert run.execution_time > 0

    def test_real_workloads_mostly_find_an_idle_bus(self, campaign):
        """The dark bars of Figure 6(a): bus empty or one contender most of the time."""
        assert campaign.fraction_with_at_most(1) > 0.5

    def test_aggregated_counts_sum_over_runs(self, campaign):
        total = sum(campaign.aggregated_counts().values())
        assert total == sum(run.histogram.total_requests for run in campaign.runs)

    def test_campaign_on_small_platform_runs(self, tiny_config):
        campaign = run_workload_campaign(
            tiny_config, num_workloads=2, observed_iterations=4, seed=1
        )
        assert len(campaign.runs) == 2


class TestRskReferenceWorkload:
    def test_rsk_workload_finds_all_contenders_ready(self, ref_config):
        """The light bars of Figure 6(a): with 4 rsk nearly every request sees
        all other cores contending."""
        run = run_rsk_reference_workload(ref_config, iterations=100)
        assert run.histogram.fraction_with(ref_config.num_cores - 1) > 0.95
        assert run.bus_utilisation > 0.95

    def test_rsk_workload_on_small_platform(self, tiny_config):
        run = run_rsk_reference_workload(tiny_config, iterations=50)
        assert run.histogram.fraction_with(tiny_config.num_cores - 1) > 0.9
