"""Integration tests: the full rsk-nop methodology on the paper's platforms.

The headline claim of the paper (Section 5.3, Figure 7(a)): sweeping the nop
count and reading the saw-tooth period of the slowdown recovers ``ubd = 27``
on both the ``ref`` and ``var`` NGMP configurations, even though the two
platforms observe different raw contention plateaus.  The tests below also
cover the robustness dimensions: arbiter initial state, alternative ``lbus``
values, and the comparison against the naive estimator.
"""

from __future__ import annotations

import pytest

from repro.config import BusConfig, reference_config, small_config, variant_config
from repro.methodology.naive import NaiveUbdEstimator
from repro.methodology.ubd import UbdEstimator


def run_methodology(config, k_max=None, iterations=30):
    k_max = k_max if k_max is not None else 2 * config.ubd + 6
    estimator = UbdEstimator(config, k_max=k_max, iterations=iterations)
    return estimator.run()


@pytest.fixture(scope="module")
def ref_result():
    return run_methodology(reference_config())


@pytest.fixture(scope="module")
def var_result():
    return run_methodology(variant_config())


class TestPaperHeadlineResult:
    def test_reference_platform_recovers_ubd_27(self, ref_result):
        assert ref_result.ubdm == 27

    def test_variant_platform_recovers_ubd_27(self, var_result):
        assert var_result.ubdm == 27

    def test_same_period_despite_different_plateaus(self, ref_result, var_result):
        """Figure 7(a): the saw-tooth period is 27 on both setups, which is
        what makes the methodology robust to the unknown injection time."""
        assert ref_result.period.period_k == var_result.period.period_k == 27

    def test_confidence_checks_pass_on_both_platforms(self, ref_result, var_result):
        assert ref_result.confidence.passed, ref_result.confidence.summary()
        assert var_result.confidence.passed, var_result.confidence.summary()

    def test_dbus_series_is_sawtooth_shaped(self, ref_result):
        """Within one period the slowdown decreases; at the period boundary it
        jumps back up (Figure 4 / Figure 7(a))."""
        values = ref_result.dbus_values
        period = ref_result.period.period_k
        # ks start at 1, so indices 0 .. period-2 cover k = 1 .. ubd-1 (the
        # decreasing flank) and index period-1 is k = ubd, where the tooth
        # re-arms with a large upward jump.
        first_period = values[: period - 1]
        assert all(a >= b for a, b in zip(first_period, first_period[1:]))
        assert values[period - 1] > values[period - 2]

    def test_methodology_beats_naive_estimator(self, ref_result):
        """rsk-nop recovers the exact bound where det/nr underestimates it."""
        naive = NaiveUbdEstimator(reference_config()).estimate_with_rsk_as_scua(iterations=40)
        assert ref_result.ubdm == reference_config().ubd
        assert naive.ubdm < reference_config().ubd

    def test_delta_nop_is_one_cycle_on_both_platforms(self, ref_result, var_result):
        assert ref_result.delta_nop.rounded == 1
        assert var_result.delta_nop.rounded == 1


class TestRobustnessAcrossPlatformParameters:
    def test_recovery_with_longer_bus_occupancy(self):
        """Changing lbus changes ubd; the methodology must track it."""
        config = small_config(bus=BusConfig(transfer_latency=2))  # lbus = 4, ubd = 8
        result = run_methodology(config, iterations=15)
        assert result.ubdm == config.ubd

    def test_recovery_with_slower_l1(self):
        """A different (unknown) injection time must not change the answer."""
        from repro.config import CacheConfig

        config = small_config(
            dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=3),
            il1=CacheConfig(size_bytes=1024, ways=2, hit_latency=3),
        )
        result = run_methodology(config, iterations=15)
        assert result.ubdm == config.ubd

    def test_recovery_independent_of_observed_core(self):
        config = small_config()
        for core in range(config.num_cores):
            estimator = UbdEstimator(
                config, k_max=2 * config.ubd + 4, iterations=15, scua_core=core
            )
            assert estimator.run().ubdm == config.ubd

    def test_store_sweep_shows_single_period_then_zero(self):
        """Figure 7(b): with stores the slowdown is saw-tooth shaped for one
        period only and vanishes once the store buffer hides the bus."""
        config = small_config()
        estimator = UbdEstimator(config, instruction_type="store", iterations=15, auto_extend=False)
        drain_interval = config.ubd + config.bus_service_l2_hit
        ks = list(range(1, drain_interval + 6))
        points = estimator.sweep(ks)
        values = [point.dbus for point in points]
        # Decreasing inside the first stretch, exactly zero well beyond it.
        assert values[0] > 0
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert all(value == 0 for k, value in zip(ks, values) if k >= drain_interval)
