"""Tests for the partitioned L2 behaviour at system level and the package API."""

from __future__ import annotations

import pytest

import repro
from repro.config import L2Config, CacheConfig, reference_config
from repro.errors import SimulationError
from repro.kernels.layout import core_address_space
from repro.kernels.rsk import build_rsk
from repro.sim.isa import Load, Program
from repro.sim.l2 import PartitionedL2
from repro.sim.system import System


class TestPartitionedL2Unit:
    def test_partition_ways_follow_config(self, ref_config):
        l2 = PartitionedL2(ref_config)
        assert l2.partition_ways(0) == (0,)
        assert l2.partition_ways(3) == (3,)

    def test_unpartitioned_l2_uses_all_ways(self):
        config = reference_config(l2=L2Config(partitioned=False))
        l2 = PartitionedL2(config)
        assert l2.partition_ways(2) == (0, 1, 2, 3)

    def test_lookup_and_fill_track_per_core_stats(self, ref_config):
        l2 = PartitionedL2(ref_config)
        assert not l2.lookup(0, 0x1000)
        l2.fill(0, 0x1000)
        assert l2.lookup(0, 0x1000)
        assert l2.per_core[0].hits == 1
        assert l2.per_core[0].misses == 1

    def test_preload_counts_lines(self, ref_config):
        l2 = PartitionedL2(ref_config)
        assert l2.preload(1, [0x0, 0x20, 0x40]) == 3
        assert l2.occupancy() == 3

    def test_invalid_core_rejected(self, ref_config):
        l2 = PartitionedL2(ref_config)
        with pytest.raises(SimulationError):
            l2.lookup(9, 0x0)

    def test_hit_latency_exposed(self, ref_config):
        assert PartitionedL2(ref_config).hit_latency == 6


class TestPartitionInterferenceIsolation:
    def test_one_core_cannot_evict_another_cores_partition(self, ref_config):
        """The property the NGMP partitioning provides: storage isolation."""
        l2 = PartitionedL2(ref_config)
        l2_cache = ref_config.l2.cache
        stride = l2_cache.same_set_stride
        victim_line = 0x0
        l2.fill(0, victim_line)
        # Core 1 hammers the same L2 set with far more lines than one way holds.
        for index in range(1, 20):
            l2.fill(1, index * stride)
        assert l2.contains(victim_line), "core 1 evicted core 0's line despite partitioning"

    def test_system_level_isolation_under_contention(self, ref_config):
        """A co-runner with a large L2 footprint must not add L2 misses (and
        hence DRAM traffic) to the observed core's rsk."""
        scua = build_rsk(ref_config, 0, iterations=30)
        # A contender walking a footprint larger than its own partition.
        space = core_address_space(1)
        hammer_lines = [
            Load(space.data_base + index * ref_config.l2.cache.same_set_stride)
            for index in range(16)
        ]
        hammer = Program(name="hammer", body=tuple(hammer_lines), iterations=None,
                         base_pc=space.code_base)
        system = System(ref_config, [scua, hammer], preload_il1=True, preload_l2=True)
        result = system.run(observed_cores=[0])
        assert result.pmc.core[0].bus_requests == 30 * (ref_config.dl1.ways + 1)
        # The scua's lines were preloaded into its own partition; the hammer
        # cannot evict them, so the scua never reaches DRAM.
        assert system.l2.per_core[0].misses == 0


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_exposed(self):
        assert callable(repro.reference_config)
        assert callable(repro.UbdEstimator)
        assert callable(repro.ubd_analytical)
        assert repro.reference_config().ubd == 27
