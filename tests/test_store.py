"""Tests for the durable SQLite-indexed result store.

The store is the campaign engine's long-lived memory: content-addressed
JSON artifacts (the source of truth) fronted by a rebuildable SQLite
index with an inline record copy, so a warm campaign answers from a
handful of batched queries instead of one filesystem probe per run.
These tests pin the contracts the runner and CLI rely on: concurrent
writers never lose rows, dedup works across campaigns, a corrupt index
is recovered from the artifacts, and a legacy flat cache migrates in.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import sqlite3

import pytest

import repro.campaign.store as store_module
from repro.campaign import (
    LEGACY_CAMPAIGN_ID,
    STORE_SCHEMA_VERSION,
    CampaignSpec,
    ParallelRunner,
    ResultCache,
    ResultStore,
    is_store_directory,
)
from repro.errors import ConfigurationError

# Two overlapping grids: B's first workload and rsk reference are A's
# runs verbatim, so a store warmed by A leaves B a one-run frontier.
SPEC_A = CampaignSpec(presets=("small",), num_workloads=1, iterations=4, rsk_iterations=20)
SPEC_B = CampaignSpec(presets=("small",), num_workloads=2, iterations=4, rsk_iterations=20)


def _record(digest: str, seed: int = 0) -> dict:
    return {"digest": digest, "schema": 4, "seed": seed, "kind": "synthetic"}


def _digest(i: int) -> str:
    return f"{i:064x}"


def _put_range(store: ResultStore, start: int, stop: int) -> None:
    store.put_many([(_digest(i), _record(_digest(i), seed=i)) for i in range(start, stop)])


class TestStoreBasics:
    def test_round_trip_and_membership(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            record = _record(_digest(1), seed=7)
            store.put(_digest(1), record)
            assert store.get(_digest(1)) == record
            assert _digest(1) in store
            assert _digest(2) not in store
            assert len(store) == 1
            assert store.get(_digest(2)) is None

    def test_store_directory_is_created_and_detectable(self, tmp_path):
        target = tmp_path / "nested" / "store"
        assert not is_store_directory(target)
        with ResultStore(target):
            pass
        assert is_store_directory(target)
        assert not is_store_directory(tmp_path)

    def test_warm_lookups_answer_from_the_index_alone(self, tmp_path):
        """The inline record copy means a warm ``get_many`` costs
        ``ceil(n / batch)`` queries and *zero* artifact reads — the
        ISSUE's >=10x fewer filesystem operations on the warm path."""
        with ResultStore(tmp_path / "store") as store:
            _put_range(store, 0, 40)
            store.counters.reset()
            hits = store.get_many([_digest(i) for i in range(40)])
            assert len(hits) == 40
            assert store.counters.index_queries == 1
            assert store.counters.artifact_reads == 0

    def test_get_many_batches_and_dedups_the_request(self, tmp_path, monkeypatch):
        monkeypatch.setattr(store_module, "_BATCH", 8)
        with ResultStore(tmp_path / "store") as store:
            _put_range(store, 0, 20)
            store.counters.reset()
            asked = [_digest(i % 20) for i in range(60)]  # each digest thrice
            hits = store.get_many(asked)
            assert len(hits) == 20
            assert store.counters.index_queries == math.ceil(20 / 8)

    def test_put_many_is_idempotent_under_replay(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            _put_range(store, 0, 5)
            _put_range(store, 0, 5)
            assert len(store) == 5
            assert len(list((tmp_path / "store").glob("*.json"))) == 5

    def test_tampered_inline_record_falls_back_to_the_artifact(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            store.put(_digest(3), _record(_digest(3)))
            store._db.execute("UPDATE runs SET record = '{ not json'")
            store._db.commit()
            store.counters.reset()
            assert store.get(_digest(3)) == _record(_digest(3))
            assert store.counters.artifact_reads == 1

    def test_record_under_wrong_digest_is_a_miss(self, tmp_path):
        """A mis-synced row (index digest != embedded digest) must be a
        miss, not a silently wrong payload — same rule as the flat cache."""
        with ResultStore(tmp_path / "store") as store:
            store.put(_digest(4), _record(_digest(4)))
            swapped = json.dumps(_record(_digest(9)), sort_keys=True)
            store._db.execute("UPDATE runs SET record = ?", (swapped,))
            store._db.commit()
            (tmp_path / "store" / f"{_digest(4)}.json").write_text(swapped, encoding="utf-8")
            assert store.get(_digest(4)) is None


def _stress_writer(directory: str, offset: int, count: int) -> None:
    """Subprocess body: write ``count`` records starting at ``offset``
    through an independent store handle, in several small batches."""
    with ResultStore(directory, campaign_id=f"writer-{offset}") as store:
        for start in range(offset, offset + count, 7):
            stop = min(start + 7, offset + count)
            store.put_many([(_digest(i), _record(_digest(i), seed=i)) for i in range(start, stop)])


class TestConcurrentWriters:
    def test_overlapping_writers_lose_nothing(self, tmp_path):
        """Four processes hammer one store with overlapping digest ranges;
        WAL + busy_timeout + INSERT OR REPLACE must leave every digest
        present, readable and consistent with its artifact."""
        directory = tmp_path / "store"
        ResultStore(directory).close()  # settle schema creation up front
        ctx = multiprocessing.get_context("fork")
        offsets = (0, 30, 60, 90)
        workers = [
            ctx.Process(target=_stress_writer, args=(str(directory), offset, 40))
            for offset in offsets
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        with ResultStore(directory) as store:
            assert len(store) == 130  # 0..129, overlaps deduplicated
            hits = store.get_many([_digest(i) for i in range(130)])
            assert len(hits) == 130
            assert all(hits[_digest(i)]["seed"] == i for i in range(130))
            # Every indexed row has its artifact on disk (crash contract).
            assert len(list(directory.glob("*.json"))) == 130


class TestCrossCampaignDedup:
    def test_second_campaign_simulates_only_its_frontier(self, tmp_path):
        """Campaign B overlaps campaign A in two of its three runs; with a
        shared store, B must simulate exactly the one novel run and still
        produce records bit-equal to an uncached execution."""
        directory = tmp_path / "store"
        with ResultStore(directory, campaign_id="campaign-a") as store:
            cold = ParallelRunner(jobs=1, cache=store).run(SPEC_A.expand())
        assert cold.stats["simulated"] == 2
        with ResultStore(directory, campaign_id="campaign-b") as store:
            overlap = ParallelRunner(jobs=2, cache=store).run(SPEC_B.expand())
            attribution = store.stats()["campaigns"]
        assert overlap.stats["simulated"] == 1
        assert overlap.stats["cached"] == 2
        assert overlap.records == ParallelRunner(jobs=1).run(SPEC_B.expand()).records
        # stats() attributes each run to the campaign that first wrote it.
        assert attribution == {"campaign-a": 2, "campaign-b": 1}

    def test_fully_warm_campaign_simulates_nothing(self, tmp_path):
        directory = tmp_path / "store"
        with ResultStore(directory, campaign_id="first") as store:
            ParallelRunner(jobs=1, cache=store).run(SPEC_B.expand())
        with ResultStore(directory, campaign_id="second") as store:
            warm = ParallelRunner(jobs=2, cache=store).run(SPEC_B.expand())
            counters = store.counters.as_dict()
        assert warm.stats["simulated"] == 0
        assert warm.stats["cached"] == 3
        assert counters["artifact_reads"] == 0
        assert counters["index_queries"] == 1


class TestRecovery:
    def test_corrupt_index_is_rebuilt_from_artifacts(self, tmp_path):
        directory = tmp_path / "store"
        with ResultStore(directory) as store:
            _put_range(store, 0, 12)
        (directory / store_module.INDEX_NAME).write_bytes(b"this is not a database")
        with ResultStore(directory) as store:
            assert len(store) == 12
            hits = store.get_many([_digest(i) for i in range(12)])
            assert all(hits[_digest(i)]["seed"] == i for i in range(12))

    def test_deleted_index_is_rebuilt_from_artifacts(self, tmp_path):
        directory = tmp_path / "store"
        with ResultStore(directory) as store:
            _put_range(store, 0, 6)
        (directory / store_module.INDEX_NAME).unlink()
        with ResultStore(directory) as store:
            assert len(store) == 6

    def test_unreadable_artifacts_are_skipped_during_rebuild(self, tmp_path):
        directory = tmp_path / "store"
        with ResultStore(directory) as store:
            _put_range(store, 0, 4)
        (directory / f"{_digest(0)}.json").write_text("{ torn", encoding="utf-8")
        (directory / store_module.INDEX_NAME).write_bytes(b"garbage")
        with ResultStore(directory) as store:
            assert len(store) == 3
            assert store.get(_digest(0)) is None

    def test_newer_index_schema_is_refused(self, tmp_path):
        directory = tmp_path / "store"
        ResultStore(directory).close()
        db = sqlite3.connect(directory / store_module.INDEX_NAME)
        with db:
            db.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(STORE_SCHEMA_VERSION + 1),),
            )
        db.close()
        with pytest.raises(ConfigurationError, match="newer"):
            ResultStore(directory)

    def test_older_index_schema_triggers_a_rebuild(self, tmp_path):
        directory = tmp_path / "store"
        with ResultStore(directory) as store:
            _put_range(store, 0, 3)
        db = sqlite3.connect(directory / store_module.INDEX_NAME)
        with db:
            db.execute("UPDATE meta SET value = '0' WHERE key = 'schema_version'")
        db.close()
        with ResultStore(directory) as store:
            assert len(store) == 3

    def test_unusable_store_path_is_a_configuration_error(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="result store"):
            ResultStore(blocker / "store")


class TestLegacyMigration:
    def test_flat_cache_migrates_and_round_trips(self, tmp_path):
        descriptors = SPEC_B.expand()
        legacy = ResultCache(tmp_path / "flat")
        ParallelRunner(jobs=1, cache=legacy).run(descriptors)
        with ResultStore(tmp_path / "store") as store:
            assert store.migrate_legacy(tmp_path / "flat") == len(descriptors)
            assert store.stats()["campaigns"] == {LEGACY_CAMPAIGN_ID: len(descriptors)}
            # Migrating again finds nothing new.
            assert store.migrate_legacy(tmp_path / "flat") == 0
        with ResultStore(tmp_path / "store", campaign_id="post-migration") as store:
            warm = ParallelRunner(jobs=1, cache=store).run(descriptors)
        assert warm.stats["simulated"] == 0
        assert warm.records == ParallelRunner(jobs=1).run(descriptors).records

    def test_in_place_migration_adopts_the_flat_layout(self, tmp_path):
        """Pointing the store at the flat cache directory itself only has
        to build the index — the artifact layout is already the store's,
        and opening a fresh index adopts the artifacts automatically."""
        legacy = ResultCache(tmp_path / "flat")
        ParallelRunner(jobs=1, cache=legacy).run(SPEC_A.expand())
        with ResultStore(tmp_path / "flat") as store:
            assert len(store) == 2  # adopted on open
            assert store.migrate_legacy(tmp_path / "flat") == 0  # nothing left
            assert store.get(SPEC_A.expand()[0].digest()) is not None

    def test_unreadable_legacy_entries_are_skipped(self, tmp_path):
        flat = tmp_path / "flat"
        flat.mkdir()
        (flat / f"{_digest(1)}.json").write_text(
            json.dumps(_record(_digest(1))), encoding="utf-8"
        )
        (flat / f"{_digest(2)}.json").write_text("{ torn", encoding="utf-8")
        (flat / f"{_digest(3)}.json").write_text(  # digest != file name
            json.dumps(_record(_digest(4))), encoding="utf-8"
        )
        with ResultStore(tmp_path / "store") as store:
            assert store.migrate_legacy(flat) == 1
            assert store.get(_digest(1)) == _record(_digest(1))

    def test_missing_legacy_directory_is_a_configuration_error(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            with pytest.raises(ConfigurationError, match="does not exist"):
                store.migrate_legacy(tmp_path / "nope")


class TestStatsAndGc:
    def test_stats_reports_sizes_and_attribution(self, tmp_path):
        with ResultStore(tmp_path / "store", campaign_id="alpha") as store:
            _put_range(store, 0, 4)
            stats = store.stats()
        assert stats["schema"] == STORE_SCHEMA_VERSION
        assert stats["entries"] == 4
        assert stats["campaigns"] == {"alpha": 4}
        assert stats["artifact_bytes"] > 0
        assert stats["index_bytes"] > 0
        assert stats["directory"] == str(tmp_path / "store")

    def test_gc_removes_old_rows_and_their_artifacts(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            _put_range(store, 0, 3)
            week_ago = store_module.time.time() - 7 * 86400.0
            store._db.execute(
                "UPDATE runs SET created_at = ? WHERE digest = ?", (week_ago, _digest(0))
            )
            store._db.commit()
            outcome = store.gc(keep_days=1.0)
            assert outcome.removed == 1
            assert outcome.skipped_in_use == 0
            assert len(store) == 2
            assert store.get(_digest(0)) is None
        assert not (tmp_path / "store" / f"{_digest(0)}.json").exists()
        assert (tmp_path / "store" / f"{_digest(1)}.json").exists()

    def test_gc_keep_everything_and_bad_arguments(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            _put_range(store, 0, 2)
            assert store.gc(keep_days=365.0).removed == 0
            with pytest.raises(ConfigurationError, match="keep_days"):
                store.gc(keep_days=-1.0)

    def test_gc_artifacts_remain_reindexable_after_partial_removal(self, tmp_path):
        """gc deletes rows before artifacts; a rebuild after gc must only
        resurrect artifacts that still exist."""
        directory = tmp_path / "store"
        with ResultStore(directory) as store:
            _put_range(store, 0, 3)
        # Simulate the crash window: row deleted, artifact left behind.
        db = sqlite3.connect(directory / store_module.INDEX_NAME)
        with db:
            db.execute("DELETE FROM runs WHERE digest = ?", (_digest(2),))
        db.close()
        with ResultStore(directory) as store:
            assert store.rebuild_index() == 1
            assert len(store) == 3


# --------------------------------------------------------------------------- #
# Claims: the serve daemon's in-use markers (gc/stats safety).
# --------------------------------------------------------------------------- #


class TestClaims:
    def test_claim_release_and_stats(self, tmp_path):
        with ResultStore(tmp_path / "store", campaign_id="job-1") as store:
            _put_range(store, 0, 2)
            store.claim("job-1")
            active = store.active_claims()
            assert set(active) == {"job-1"}
            assert active["job-1"]["pid"] == store_module.os.getpid()
            assert set(store.stats()["active_claims"]) == {"job-1"}
            store.release_claim("job-1")
            assert store.active_claims() == {}

    def test_reclaim_refreshes_heartbeat(self, tmp_path):
        with ResultStore(tmp_path / "store", campaign_id="job-1") as store:
            store.claim()
            store._db.execute(
                "UPDATE claims SET heartbeat = ?", (store_module.time.time() - 9999,)
            )
            store._db.commit()
            store.claim()  # heartbeat back to now
            assert store.active_claims(ttl=60.0) != {}

    def test_stale_claim_of_dead_pid_expires(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            store.claim("ghost")
            # Forge a claim held by a dead process with an expired heartbeat.
            store._db.execute(
                "UPDATE claims SET pid = ?, heartbeat = ? WHERE campaign_id = 'ghost'",
                (2**22 + 12345, store_module.time.time() - 9999),
            )
            store._db.commit()
            assert store.active_claims(ttl=60.0) == {}
            # A fresh heartbeat keeps even an unverifiable pid alive.
            store.claim("ghost")
            assert "ghost" in store.active_claims()

    def test_gc_skips_claimed_campaign_rows(self, tmp_path):
        with ResultStore(tmp_path / "store", campaign_id="daemon-job") as store:
            _put_range(store, 0, 3)
            week_ago = store_module.time.time() - 7 * 86400.0
            store._db.execute("UPDATE runs SET created_at = ?", (week_ago,))
            store._db.commit()
            store.claim("daemon-job")
            outcome = store.gc(keep_days=1.0)
            # Every old row belongs to the claimed campaign: all skipped.
            assert outcome.removed == 0
            assert outcome.skipped_in_use == 3
            assert outcome.in_use_campaigns == ("daemon-job",)
            assert len(store) == 3
            store.release_claim("daemon-job")
            outcome = store.gc(keep_days=1.0)
            assert outcome.removed == 3
            assert outcome.skipped_in_use == 0

    def test_gc_purges_stale_claims(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            store.claim("ghost")
            store._db.execute(
                "UPDATE claims SET pid = ?, heartbeat = ? WHERE campaign_id = 'ghost'",
                (2**22 + 12345, store_module.time.time() - 9999),
            )
            store._db.commit()
            store.gc(keep_days=365.0)
            rows = store._db.execute("SELECT campaign_id FROM claims").fetchall()
            assert rows == []

    def test_gc_outcome_as_dict(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            outcome = store.gc(keep_days=365.0)
        payload = outcome.as_dict()
        assert payload["removed"] == 0
        assert payload["skipped_in_use"] == 0
        assert payload["in_use_campaigns"] == []


# --------------------------------------------------------------------------- #
# Thread safety: the daemon shares one handle across handler threads.
# --------------------------------------------------------------------------- #


class TestThreadSafety:
    def test_concurrent_threads_share_one_handle(self, tmp_path):
        import threading

        with ResultStore(tmp_path / "store") as store:
            errors = []

            def writer(offset):
                try:
                    for i in range(offset, offset + 20):
                        store.put(_digest(i), _record(_digest(i), seed=i))
                        assert store.get(_digest(i)) is not None
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(offset,))
                for offset in (0, 100, 200, 300)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert len(store) == 80
