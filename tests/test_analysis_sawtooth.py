"""Unit tests for the saw-tooth period detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.model import gamma_of_delta
from repro.analysis.sawtooth import PeriodEstimate, SawtoothAnalyzer
from repro.errors import AnalysisError


def synthetic_dbus(ks, ubd, delta_rsk=1, requests=200, noise=0.0, seed=0):
    """Build the dbus(k) series Equation 2 predicts, optionally with noise."""
    rng = np.random.default_rng(seed)
    values = []
    for k in ks:
        value = gamma_of_delta(delta_rsk + k, ubd) * requests
        if noise:
            value += rng.normal(0.0, noise * requests)
        values.append(value)
    return values


class TestConstruction:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            SawtoothAnalyzer([1, 2, 3], [1.0, 2.0])

    def test_too_few_points_rejected(self):
        with pytest.raises(AnalysisError):
            SawtoothAnalyzer([1, 2, 3], [1.0, 2.0, 3.0])

    def test_non_increasing_ks_rejected(self):
        with pytest.raises(AnalysisError):
            SawtoothAnalyzer([1, 3, 2, 4], [1.0, 2.0, 3.0, 4.0])

    def test_non_uniform_spacing_rejected(self):
        with pytest.raises(AnalysisError):
            SawtoothAnalyzer([1, 2, 4, 5], [1.0, 2.0, 3.0, 4.0])


class TestExactDetector:
    def test_recovers_ubd_27(self):
        ks = list(range(1, 60))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        assert analyzer.period_exact() == 27

    @pytest.mark.parametrize("ubd", [3, 5, 9, 12, 27, 33])
    def test_recovers_arbitrary_periods(self, ubd):
        ks = list(range(1, 3 * ubd))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=ubd))
        assert analyzer.period_exact() == ubd

    def test_independent_of_delta_rsk(self):
        """The paper's key robustness claim: the period does not depend on delta_rsk."""
        ks = list(range(1, 70))
        for delta_rsk in (1, 2, 4, 7):
            analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27, delta_rsk=delta_rsk))
            assert analyzer.period_exact() == 27

    def test_returns_none_when_sweep_too_short(self):
        ks = list(range(1, 15))  # shorter than one ubd=27 period
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        assert analyzer.period_exact() is None

    def test_tolerates_small_noise(self):
        ks = list(range(1, 60))
        values = synthetic_dbus(ks, ubd=27, noise=0.002)
        analyzer = SawtoothAnalyzer(ks, values, relative_tolerance=0.05)
        assert analyzer.period_exact() == 27


class TestRobustDetectors:
    def test_rising_edges_recovers_period(self):
        ks = list(range(1, 85))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        assert analyzer.period_rising_edges() == 27

    def test_autocorrelation_recovers_period(self):
        ks = list(range(1, 85))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        assert analyzer.period_autocorrelation() == 27

    def test_fft_close_to_period(self):
        ks = list(range(1, 109))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        assert abs(analyzer.period_fft() - 27) <= 2

    def test_constant_series_yields_no_period(self):
        ks = list(range(1, 20))
        analyzer = SawtoothAnalyzer(ks, [100.0] * len(ks))
        assert analyzer.period_rising_edges() is None
        assert analyzer.period_autocorrelation() is None
        assert analyzer.period_fft() is None

    def test_robust_detectors_survive_moderate_noise(self):
        ks = list(range(1, 110))
        values = synthetic_dbus(ks, ubd=27, noise=0.05, seed=3)
        analyzer = SawtoothAnalyzer(ks, values)
        assert analyzer.period_rising_edges() == 27


class TestConsensus:
    def test_estimate_prefers_exact_detector(self):
        ks = list(range(1, 60))
        estimate = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27)).estimate()
        assert estimate.period_k == 27
        assert estimate.per_method["exact"] == 27
        assert estimate.agreement >= 0.75

    def test_estimate_converts_to_cycles_with_delta_nop(self):
        ks = list(range(1, 30))
        estimate = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=9)).estimate(delta_nop=2)
        assert estimate.period_k == 9
        assert estimate.period_cycles == 18

    def test_estimate_raises_when_nothing_found(self):
        ks = list(range(1, 10))
        analyzer = SawtoothAnalyzer(ks, [5.0] * 9)
        with pytest.raises(AnalysisError):
            analyzer.estimate()

    def test_estimate_rejects_bad_delta_nop(self):
        ks = list(range(1, 60))
        analyzer = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27))
        with pytest.raises(AnalysisError):
            analyzer.estimate(delta_nop=0)

    def test_summary_mentions_period_and_agreement(self):
        ks = list(range(1, 60))
        estimate = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=27)).estimate()
        summary = estimate.summary()
        assert "27" in summary
        assert "%" in summary

    def test_estimate_on_small_platform_period(self):
        ks = list(range(1, 13))
        estimate = SawtoothAnalyzer(ks, synthetic_dbus(ks, ubd=3)).estimate()
        assert estimate.period_k == 3
