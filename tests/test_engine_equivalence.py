"""Four-way engine equivalence (the scheduler's oracle contract).

The fast engines' whole value proposition is that they are *cycle-exact*:
the event engine, the per-chain generated loops of the ``codegen`` engine
and the trace-capture/``replay`` engine must produce the same execution
times, PMC counts (including the per-resource sections), request traces
(every stamp, including the memory-stage and response-channel timings)
and delay histograms as the stepped oracle, only faster.  These tests
check that contract deterministically for all four arbiters on all three
topologies and both rsk flavours, and property-test it (hypothesis)
across random platform geometries, programs and preload combinations.

The replay engine is run twice per differential: once cold (trace cache
cleared, so the run is a capture run on real cores) and once warm (every
trace-safe core streams its memoised :class:`~repro.sim.trace.CoreTrace`
through a :class:`~repro.sim.trace.ReplayCore`), and both runs must match
the oracle bit for bit.  Store kernels and other trace-unsafe programs
exercise the per-core fallback path for free.

The codegen engine gets the generate→test→regenerate treatment: on a
mismatch the harness recompiles the loop from scratch, re-runs it with the
self-checking diagnostics variant (which cross-checks every inlined
decision against the generic resource methods), and fails with the
offending generated source attached — see :func:`_check_codegen`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.contention import contention_histogram
from repro.config import (
    ARBITRATION_POLICIES,
    TOPOLOGIES,
    BusConfig,
    CacheConfig,
    L2Config,
    StoreBufferConfig,
    TopologyConfig,
    small_config,
)
from repro.errors import AnalysisError
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import build_contender_set
from repro.sim import codegen as codegen_mod
from repro.sim.codegen import CodegenMismatch
from repro.sim.isa import Alu, Load, Nop, Program, Store
from repro.sim.system import System
from repro.sim.trace import clear_trace_cache

#: Every engine under the oracle contract, oracle first.
ENGINES_UNDER_TEST = ("stepped", "event", "codegen", "replay")


def _trace_tuples(result):
    if result.trace is None:
        return None
    return [
        (
            record.port,
            record.kind,
            record.addr,
            record.resource,
            record.origin_core,
            record.ready_cycle,
            record.grant_cycle,
            record.complete_cycle,
            record.service_cycles,
            record.contenders_at_ready,
            record.bus_busy_at_ready,
            record.mem_ready_cycle,
            record.mem_grant_cycle,
            record.mem_complete_cycle,
            record.response_ready_cycle,
            record.response_grant_cycle,
            record.response_complete_cycle,
        )
        for record in result.trace.records
    ]


def _observable_state(result) -> Dict[str, object]:
    return {
        "cycles": result.cycles,
        "done_cycles": result.done_cycles,
        "instructions": result.instructions,
        "timed_out": result.timed_out,
        "pmc": result.pmc.as_dict(),
        "trace": _trace_tuples(result),
    }


def _check_codegen(config, build_system, observed, max_cycles, oracle_state):
    """The regenerate-with-diagnostics pass of the codegen harness.

    Called when the generated loop's observable state diverged from the
    oracle's.  Recompiles the loop from scratch (so a stale compile-cache
    entry cannot mask — or cause — the divergence), re-runs the fresh loop,
    then runs the self-checking diagnostics variant, and fails with the
    generated source attached either way.
    """
    codegen_mod.regenerate(config)
    retry = build_system().run(observed_cores=observed, max_cycles=max_cycles, engine="codegen")
    retry_matches = _observable_state(retry) == oracle_state
    diag_loop = codegen_mod.regenerate(config, diagnostics=True)
    diag_note = "diagnostics re-run found no divergent inline decision"
    try:
        diag_loop.run(build_system(), list(observed), max_cycles)
    except CodegenMismatch as exc:
        diag_note = f"diagnostics: {exc}"
    pytest.fail(
        "codegen engine diverged from the stepped oracle"
        + (
            " (a freshly regenerated loop agrees — stale compile cache?)"
            if retry_matches
            else " (regenerating did not help)"
        )
        + f"\n{diag_note}\n--- generated source ---\n{diag_loop.source}"
    )


def _run_both(config, programs, observed, trace=True, max_cycles=2_000_000, **kwargs):
    """Run every engine and assert four-way observable equivalence.

    Keeps its historical name from the two-engine days; it now drives the
    full :data:`ENGINES_UNDER_TEST` differential and returns all outcomes.
    The replay engine runs twice — a cold capture run (trace cache cleared
    first) and a warm run replaying the just-captured traces — and both
    must match the oracle.
    """

    def build_system():
        return System(config, list(programs), trace=trace, **kwargs)

    outcomes = {}
    for engine in ENGINES_UNDER_TEST:
        if engine == "replay":
            clear_trace_cache()
        outcomes[engine] = build_system().run(
            observed_cores=observed, max_cycles=max_cycles, engine=engine
        )
    oracle_state = _observable_state(outcomes["stepped"])
    assert _observable_state(outcomes["event"]) == oracle_state
    if _observable_state(outcomes["codegen"]) != oracle_state:
        _check_codegen(config, build_system, observed, max_cycles, oracle_state)
    assert _observable_state(outcomes["replay"]) == oracle_state, (
        "replay engine (cold capture run) diverged from the stepped oracle"
    )
    warm = build_system().run(observed_cores=observed, max_cycles=max_cycles, engine="replay")
    assert _observable_state(warm) == oracle_state, (
        "replay engine (warm trace-replay run) diverged from the stepped oracle"
    )
    return outcomes


class TestAllArbitersEquivalent:
    @pytest.mark.parametrize("arbiter", ARBITRATION_POLICIES)
    @pytest.mark.parametrize("kind", ["load", "store"])
    def test_rsk_contention_is_identical(self, arbiter, kind):
        config = small_config(bus=BusConfig(arbitration=arbiter, transfer_latency=1))
        scua = build_rsk(config, 0, kind=kind, iterations=60)
        contenders = build_contender_set(config, 0, kind=kind)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        for core, program in contenders.items():
            programs[core] = program
        outcomes = _run_both(config, programs, observed=[0], preload_l2=True, preload_il1=True)
        stepped = _observable_state(outcomes["stepped"])
        event = _observable_state(outcomes["event"])
        assert stepped == event
        # The delay histogram — the paper's headline artifact — must match
        # bin for bin (loads only; store traffic drains via the buffer).
        if kind == "load":
            histograms = {}
            for engine, outcome in outcomes.items():
                try:
                    histograms[engine] = contention_histogram(outcome.trace, 0).counts
                except AnalysisError:
                    histograms[engine] = None
            assert histograms["event"] == histograms["stepped"]
            assert histograms["codegen"] == histograms["stepped"]

    def test_dram_path_is_identical(self):
        # No preloading: every miss walks the full controller + DRAM path.
        config = small_config()
        scua = build_rsk(config, 0, iterations=40)
        contenders = build_contender_set(config, 0)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        for core, program in contenders.items():
            programs[core] = program
        outcomes = _run_both(config, programs, observed=[0])
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])

    def test_timeout_stops_on_the_same_cycle(self):
        config = small_config()
        scua = build_rsk(config, 0, iterations=10_000)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        outcomes = _run_both(config, programs, observed=[0], max_cycles=777, preload_l2=True)
        for outcome in outcomes.values():
            assert outcome.timed_out
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])


class TestChainedTopologyEquivalent:
    """Stepped vs event on the multi-resource topology (bus -> bank queues).

    Satellite of the composable-interconnect refactor: at least one
    chained-resource run per arbiter, on both the bus axis (every bus
    arbiter over FIFO bank queues) and the memory axis (round-robin bus
    over every bank-queue arbiter).  No preloading, so every request walks
    bus -> bank queue -> DRAM -> response, exercising both contention
    points and the bank-grant horizon.
    """

    @staticmethod
    def _run_chained(config, kind="load", iterations=45):
        scua = build_rsk(config, 0, kind=kind, iterations=iterations)
        contenders = build_contender_set(config, 0, kind=kind)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        for core, program in contenders.items():
            programs[core] = program
        outcomes = _run_both(config, programs, observed=[0])
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])
        return outcomes

    @pytest.mark.parametrize("arbiter", ARBITRATION_POLICIES)
    @pytest.mark.parametrize("kind", ["load", "store"])
    def test_every_bus_arbiter_over_fifo_bank_queues(self, arbiter, kind):
        config = small_config(
            bus=BusConfig(arbitration=arbiter, transfer_latency=1),
            topology=TopologyConfig(name="bus_bank_queues"),
        )
        outcomes = self._run_chained(config, kind=kind)
        if kind == "load":
            histograms = {}
            for engine, outcome in outcomes.items():
                try:
                    histograms[engine] = contention_histogram(outcome.trace, 0).counts
                except AnalysisError:
                    histograms[engine] = None
            assert histograms["event"] == histograms["stepped"]
            assert histograms["codegen"] == histograms["stepped"]

    @pytest.mark.parametrize("mem_arbiter", ARBITRATION_POLICIES)
    def test_every_bank_queue_arbiter_under_round_robin_bus(self, mem_arbiter):
        config = small_config(
            topology=TopologyConfig(
                name="bus_bank_queues",
                mem_arbitration=mem_arbiter,
                mem_tdma_slot=40,
            )
        )
        self._run_chained(config)

    def test_chained_timeout_stops_on_the_same_cycle(self):
        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        scua = build_rsk(config, 0, iterations=10_000)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        outcomes = _run_both(config, programs, observed=[0], max_cycles=901)
        for outcome in outcomes.values():
            assert outcome.timed_out
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])


class TestSplitBusEquivalent:
    """Stepped vs event on the split-transaction topology (request channel
    -> bank queues -> response channel): three composed resources, so the
    engines must agree while juggling three independent horizon caches and
    deliveries that post work into a *later* resource of the same cycle's
    chain.  No preloading, so every request walks all three stages."""

    @staticmethod
    def _run_split(config, kind="load", iterations=45):
        scua = build_rsk(config, 0, kind=kind, iterations=iterations)
        contenders = build_contender_set(config, 0, kind=kind)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        for core, program in contenders.items():
            programs[core] = program
        outcomes = _run_both(config, programs, observed=[0])
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])
        return outcomes

    @pytest.mark.parametrize("arbiter", ARBITRATION_POLICIES)
    @pytest.mark.parametrize("kind", ["load", "store"])
    def test_every_request_arbiter_on_the_split_bus(self, arbiter, kind):
        config = small_config(
            bus=BusConfig(arbitration=arbiter, transfer_latency=1),
            topology=TopologyConfig(name="split_bus"),
        )
        outcomes = self._run_split(config, kind=kind)
        if kind == "load":
            histograms = {}
            for engine, outcome in outcomes.items():
                try:
                    histograms[engine] = contention_histogram(outcome.trace, 0).counts
                except AnalysisError:
                    histograms[engine] = None
            assert histograms["event"] == histograms["stepped"]
            assert histograms["codegen"] == histograms["stepped"]

    @pytest.mark.parametrize("response_arbiter", ARBITRATION_POLICIES)
    def test_every_response_arbiter_under_round_robin_requests(self, response_arbiter):
        config = small_config(
            topology=TopologyConfig(
                name="split_bus",
                response_arbitration=response_arbiter,
                response_tdma_slot=5,
            )
        )
        self._run_split(config)

    def test_split_timeout_stops_on_the_same_cycle(self):
        config = small_config(topology=TopologyConfig(name="split_bus"))
        scua = build_rsk(config, 0, iterations=10_000)
        programs: List[Optional[Program]] = [None] * config.num_cores
        programs[0] = scua
        outcomes = _run_both(config, programs, observed=[0], max_cycles=903)
        for outcome in outcomes.values():
            assert outcome.timed_out
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])


# --------------------------------------------------------------------------- #
# Property-based equivalence over random configs, arbiters and kernels.
# --------------------------------------------------------------------------- #

_addresses = st.integers(min_value=0, max_value=31).map(lambda i: 0x100 + 32 * i)

_bodies = st.lists(
    st.one_of(
        st.builds(Nop),
        st.builds(Alu, latency=st.integers(min_value=1, max_value=4)),
        st.builds(Load, addr=_addresses),
        st.builds(Store, addr=_addresses),
    ),
    min_size=1,
    max_size=12,
)

_programs = st.builds(
    lambda body, iterations: Program(name="random", body=tuple(body), iterations=iterations),
    body=_bodies,
    iterations=st.integers(min_value=1, max_value=5),
)

def _build_config(arbiter, transfer, slot, dl1_latency, entries, cores, topology, mem_arbiter):
    return small_config(
        num_cores=cores,
        bus=BusConfig(arbitration=arbiter, transfer_latency=transfer, tdma_slot=slot),
        dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=dl1_latency),
        l2=L2Config(cache=CacheConfig(size_bytes=8 * 1024, ways=4, line_size=32, hit_latency=2)),
        store_buffer=StoreBufferConfig(entries=entries),
        # The drawn arbiter doubles as the response-channel policy so the
        # split_bus strategy also sweeps response arbitration.
        topology=TopologyConfig(
            name=topology,
            mem_arbitration=mem_arbiter,
            response_arbitration=mem_arbiter,
            response_tdma_slot=slot,
        ),
    )


_configs = st.builds(
    _build_config,
    arbiter=st.sampled_from(ARBITRATION_POLICIES),
    transfer=st.integers(min_value=1, max_value=3),
    slot=st.integers(min_value=3, max_value=9),
    dl1_latency=st.sampled_from([1, 4]),
    entries=st.integers(min_value=1, max_value=2),
    cores=st.integers(min_value=2, max_value=4),
    topology=st.sampled_from(TOPOLOGIES),
    mem_arbiter=st.sampled_from(ARBITRATION_POLICIES),
)


class TestEngineEquivalenceProperties:
    @given(
        config=_configs,
        observed_program=_programs,
        contender_programs=st.lists(st.one_of(st.none(), _programs), max_size=3),
        preload_l2=st.booleans(),
        preload_il1=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_on_everything_observable(
        self, config, observed_program, contender_programs, preload_l2, preload_il1
    ):
        programs: List[Optional[Program]] = [observed_program]
        programs.extend(contender_programs[: config.num_cores - 1])
        programs.extend([None] * (config.num_cores - len(programs)))
        outcomes = _run_both(
            config,
            programs,
            observed=[0],
            preload_l2=preload_l2,
            preload_il1=preload_il1,
        )
        assert _observable_state(outcomes["stepped"]) == _observable_state(outcomes["event"])
