"""Codegen engine unit tests: compile cache, fallbacks, diagnostics, goldens.

The cycle-exactness of the generated loops is covered by the three-way
differential in ``test_engine_equivalence.py``; this module tests the
machinery around them:

* the content-addressed compile cache — equal :func:`loop_cache_key`
  digests reuse the identical :class:`CompiledLoop` object, unequal
  payloads never collide, and the digest-excluded ``engine`` field is
  explicitly exercised;
* the golden-source snapshots — one generated module per built-in
  topology, refreshed with ``pytest --regen``;
* the bind-time fallback — runtime-registered topologies and policies and
  externally injected arbiters route to the generic event engine with a
  reason, and still simulate correctly;
* the diagnostics variant — the self-checking loop agrees with the
  stepped oracle without tripping its own cross-checks.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import (
    ENGINES,
    TOPOLOGIES,
    ArchConfig,
    BusConfig,
    TopologyConfig,
    small_config,
)
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import build_contender_set
from repro.sim.arbiter import ARBITER_REGISTRY, RoundRobinArbiter, register_arbiter
from repro.sim.codegen import (
    CodegenEngine,
    clear_compile_cache,
    compile_cache_size,
    compile_loop,
    generate_loop_source,
    loop_cache_key,
    regenerate,
    specialisation_mismatch,
)
from repro.sim.scheduler import EventScheduler, make_engine
from repro.sim.system import System
from repro.sim.topology import TOPOLOGY_REGISTRY, register_topology

GOLDEN_DIR = Path(__file__).parent / "goldens"


def _rsk_programs(config: ArchConfig, iterations: int = 40, kind: str = "load"):
    scua = build_rsk(config, 0, kind=kind, iterations=iterations)
    programs: List[Optional[object]] = [None] * config.num_cores
    programs[0] = scua
    for core, program in build_contender_set(config, 0, kind=kind).items():
        programs[core] = program
    return programs


def _topology_config(name: str) -> ArchConfig:
    return small_config(topology=TopologyConfig(name=name))


# --------------------------------------------------------------------------- #
# The content-addressed compile cache.
# --------------------------------------------------------------------------- #


class TestCompileCache:
    def test_equal_digests_reuse_the_compiled_loop(self):
        """Two independently built but equal configurations hit the same
        cache slot and get back the *identical* CompiledLoop object."""
        clear_compile_cache()
        first = compile_loop(small_config())
        second = compile_loop(small_config())
        assert first is second
        assert compile_cache_size() == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_engine_field_is_excluded_from_the_key(self, engine):
        """The engine choice selects which loop *runs*, never what the
        specialised loop must do: every engine twin shares one digest and
        therefore one compiled loop."""
        base = small_config()
        twin = small_config(engine=engine)
        assert loop_cache_key(twin) == loop_cache_key(base)
        assert compile_loop(twin) is compile_loop(base)

    def test_diagnostics_variant_is_cached_separately(self):
        clear_compile_cache()
        config = small_config()
        plain = compile_loop(config)
        diag = compile_loop(config, diagnostics=True)
        assert plain is not diag
        assert diag.diagnostics and not plain.diagnostics
        assert plain.key == diag.key
        assert compile_cache_size() == 2
        # Each variant still cache-hits its own slot.
        assert compile_loop(config) is plain
        assert compile_loop(config, diagnostics=True) is diag

    def test_regenerate_discards_the_cached_loop(self):
        config = small_config()
        stale = compile_loop(config)
        fresh = regenerate(config)
        assert fresh is not stale
        # Generation is deterministic, so the recompiled source is
        # byte-identical — and the fresh loop now serves the cache.
        assert fresh.source == stale.source
        assert compile_loop(config) is fresh

    @given(
        a_cores=st.integers(min_value=2, max_value=4),
        a_transfer=st.integers(min_value=1, max_value=3),
        a_slot=st.integers(min_value=3, max_value=6),
        a_topology=st.sampled_from(TOPOLOGIES),
        a_engine=st.sampled_from(ENGINES),
        b_cores=st.integers(min_value=2, max_value=4),
        b_transfer=st.integers(min_value=1, max_value=3),
        b_slot=st.integers(min_value=3, max_value=6),
        b_topology=st.sampled_from(TOPOLOGIES),
        b_engine=st.sampled_from(ENGINES),
    )
    @settings(max_examples=60, deadline=None)
    def test_keys_collide_iff_non_engine_payloads_are_equal(
        self,
        a_cores,
        a_transfer,
        a_slot,
        a_topology,
        a_engine,
        b_cores,
        b_transfer,
        b_slot,
        b_topology,
        b_engine,
    ):
        """The digest property: equal keys exactly when the serialised
        configurations differ in nothing but the ``engine`` field."""

        def build(cores, transfer, slot, topology, engine):
            return small_config(
                num_cores=cores,
                engine=engine,
                bus=BusConfig(arbitration="tdma", transfer_latency=transfer, tdma_slot=slot),
                topology=TopologyConfig(name=topology),
            )

        a = build(a_cores, a_transfer, a_slot, a_topology, a_engine)
        b = build(b_cores, b_transfer, b_slot, b_topology, b_engine)
        payload_a = a.to_dict()
        payload_a.pop("engine", None)
        payload_b = b.to_dict()
        payload_b.pop("engine", None)
        assert (loop_cache_key(a) == loop_cache_key(b)) == (payload_a == payload_b)


# --------------------------------------------------------------------------- #
# Golden generated-source snapshots (refresh with: pytest --regen).
# --------------------------------------------------------------------------- #


class TestGoldenSource:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_generated_source_matches_its_snapshot(self, topology, regen):
        config = _topology_config(topology)
        source = generate_loop_source(config)
        golden = GOLDEN_DIR / f"codegen_{topology}.py.txt"
        if regen:
            GOLDEN_DIR.mkdir(exist_ok=True)
            golden.write_text(source, encoding="utf-8")
            return
        assert golden.is_file(), (
            f"golden snapshot {golden} is missing; create it with "
            "`pytest tests/test_codegen.py --regen`"
        )
        assert source == golden.read_text(encoding="utf-8"), (
            f"the generated loop for {topology!r} drifted from its golden "
            "snapshot; review the change, then refresh with "
            "`pytest tests/test_codegen.py --regen`"
        )

    def test_generation_is_deterministic(self):
        config = _topology_config("split_bus")
        assert generate_loop_source(config) == generate_loop_source(config)


# --------------------------------------------------------------------------- #
# Bind-time fallback to the generic event engine.
# --------------------------------------------------------------------------- #


class TestFallback:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_builtin_chains_specialise(self, topology):
        config = _topology_config(topology)
        system = System(config, _rsk_programs(config), preload_l2=True)
        assert specialisation_mismatch(system) is None
        engine = make_engine("codegen", system)
        assert isinstance(engine, CodegenEngine)
        assert engine.fallback_reason is None
        assert engine.compiled is not None

    def test_registered_topology_falls_back_and_still_simulates(self):
        """A runtime-registered topology has no generated loop: the engine
        must say why and delegate to the generic EventScheduler, which runs
        it cycle-exactly."""
        name = "test_codegen_mirror"
        register_topology(name, "test-only mirror of bus_bank_queues")(
            TOPOLOGY_REGISTRY.require("bus_bank_queues").builder
        )
        try:
            config = small_config(topology=TopologyConfig(name=name))
            system = System(config, _rsk_programs(config))
            engine = make_engine("codegen", system)
            assert isinstance(engine, CodegenEngine)
            assert engine.fallback_reason is not None
            assert name in engine.fallback_reason
            assert isinstance(engine._fallback, EventScheduler)
            fallback_cycles = System(config, _rsk_programs(config)).run(
                observed_cores=[0], engine="codegen"
            )
            oracle_cycles = System(config, _rsk_programs(config)).run(
                observed_cores=[0], engine="stepped"
            )
            assert fallback_cycles.cycles == oracle_cycles.cycles
        finally:
            TOPOLOGY_REGISTRY.pop(name)

    def test_registered_arbiter_policy_falls_back_and_still_simulates(self):
        """A runtime-registered arbitration policy has no inlined grant
        logic — same deal: reasoned fallback, correct result."""

        class LowestPortArbiter(RoundRobinArbiter):
            policy_name = "test_codegen_lowest"

            def select(self, cycle, pending_ports):
                return min(pending_ports)

        name = "test_codegen_lowest"
        register_arbiter(name, "test-only policy")(
            lambda num_ports, tdma_slot: LowestPortArbiter(num_ports)
        )
        try:
            config = small_config(bus=BusConfig(arbitration=name))
            system = System(config, _rsk_programs(config), preload_l2=True)
            engine = make_engine("codegen", system)
            assert engine.fallback_reason is not None
            assert name in engine.fallback_reason
            fallback = System(
                config, _rsk_programs(config), preload_l2=True
            ).run(observed_cores=[0], engine="codegen")
            oracle = System(config, _rsk_programs(config), preload_l2=True).run(
                observed_cores=[0], engine="stepped"
            )
            assert fallback.cycles == oracle.cycles
        finally:
            ARBITER_REGISTRY.pop(name)

    def test_external_arbiter_instance_falls_back_and_still_simulates(self):
        """An arbiter injected via ``System(arbiter=...)`` may be a subclass
        overriding selection, so the ``type() is`` guard must refuse to run
        the specialised loop even though the configuration digest matches."""

        class PoliteRoundRobin(RoundRobinArbiter):
            pass

        config = small_config()
        ports = config.num_cores + 1  # bus_only: demand ports + response port

        def build() -> System:
            return System(
                config,
                _rsk_programs(config),
                preload_l2=True,
                arbiter=PoliteRoundRobin(ports),
            )

        engine = make_engine("codegen", build())
        assert engine.fallback_reason is not None
        assert "PoliteRoundRobin" in engine.fallback_reason
        fallback = build().run(observed_cores=[0], engine="codegen")
        oracle = build().run(observed_cores=[0], engine="stepped")
        assert fallback.cycles == oracle.cycles


# --------------------------------------------------------------------------- #
# The self-checking diagnostics variant.
# --------------------------------------------------------------------------- #


class TestDiagnosticsLoop:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_diagnostics_loop_agrees_without_tripping(self, topology):
        """The diagnostics loop cross-checks every inlined winner and every
        horizon against the generic resource methods; on a correct build it
        must finish silently, on the oracle's exact cycle."""
        config = _topology_config(topology)
        oracle = System(config, _rsk_programs(config)).run(observed_cores=[0], engine="stepped")
        loop = compile_loop(config, diagnostics=True)
        cycle, timed_out = loop.run(System(config, _rsk_programs(config)), [0], 2_000_000)
        assert not timed_out
        assert cycle + 1 == oracle.cycles
