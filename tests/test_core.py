"""Unit tests for the in-order core timing model.

These tests run tiny programs on a single-core platform and check exact
cycle counts, which pins down the timing semantics the methodology relies on
(most importantly: the injection time of back-to-back missing loads equals
the DL1 latency).
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.config import ArchConfig, BusConfig, CacheConfig, L2Config, StoreBufferConfig
from repro.sim.core import CoreState
from repro.sim.isa import Alu, Load, Nop, Program, Store
from repro.sim.system import System


def micro_config(
    num_cores: int = 1,
    l1_latency: int = 1,
    l2_latency: int = 2,
    transfer: int = 1,
    store_buffer_entries: int = 2,
) -> ArchConfig:
    """A minimal platform with easily hand-checkable latencies."""
    return ArchConfig(
        name="micro",
        num_cores=num_cores,
        il1=CacheConfig(size_bytes=1024, ways=2, hit_latency=l1_latency),
        dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=l1_latency),
        l2=L2Config(
            cache=CacheConfig(
                size_bytes=8 * 1024,
                ways=max(2, num_cores),
                line_size=32,
                hit_latency=l2_latency,
            )
        ),
        bus=BusConfig(transfer_latency=transfer),
        store_buffer=StoreBufferConfig(entries=store_buffer_entries),
    )


def run_single(config: ArchConfig, program: Program, **kwargs) -> int:
    """Execution time of ``program`` alone on core 0."""
    programs: List[Optional[Program]] = [program] + [None] * (config.num_cores - 1)
    system = System(config, programs, **kwargs)
    return system.run().execution_time(0)


LBUS = 3  # transfer (1) + L2 hit latency (2) of micro_config


class TestComputeTiming:
    def test_nop_takes_one_cycle_each(self):
        config = micro_config()
        program = Program(name="nops", body=tuple(Nop() for _ in range(10)), iterations=1)
        assert run_single(config, program, preload_il1=True) == 10

    def test_alu_latency_respected(self):
        config = micro_config()
        program = Program(name="alu", body=(Alu(latency=4),), iterations=5)
        assert run_single(config, program, preload_il1=True) == 20

    def test_mixed_compute(self):
        config = micro_config()
        program = Program(name="mix", body=(Nop(), Alu(latency=3)), iterations=2)
        assert run_single(config, program, preload_il1=True) == 2 * (1 + 3)

    def test_nop_latency_from_config(self):
        config = micro_config().with_overrides(nop_latency=2)
        program = Program(name="nops", body=(Nop(),), iterations=6)
        assert run_single(config, program, preload_il1=True) == 12


class TestLoadTiming:
    def test_dl1_hit_costs_l1_latency(self):
        config = micro_config(l1_latency=1)
        program = Program(name="hits", body=(Load(0x100),), iterations=8)
        # The DL1 is preloaded, so every access hits at the L1 latency.
        time = run_single(config, program, preload_il1=True, preload_dl1=True)
        assert time == 8 * config.dl1.hit_latency

    def test_l2_hit_load_costs_l1_plus_bus(self):
        config = micro_config(l1_latency=1)
        stride = config.dl1.same_set_stride
        addresses = [index * stride for index in range(config.dl1.ways + 1)]
        body = tuple(Load(addr) for addr in addresses)
        program = Program(name="l2hits", body=body, iterations=4)
        time = run_single(config, program, preload_il1=True, preload_l2=True)
        per_load = config.dl1.hit_latency + LBUS
        assert time == len(addresses) * 4 * per_load

    def test_variant_l1_latency_increases_per_load_cost(self):
        config = micro_config(l1_latency=4)
        stride = config.dl1.same_set_stride
        addresses = [index * stride for index in range(config.dl1.ways + 1)]
        program = Program(name="l2hits", body=tuple(Load(a) for a in addresses), iterations=2)
        time = run_single(config, program, preload_il1=True, preload_l2=True)
        assert time == len(addresses) * 2 * (4 + LBUS)

    def test_l2_miss_goes_to_dram_and_costs_more(self):
        config = micro_config()
        program = Program(name="cold", body=(Load(0x100),), iterations=1)
        cold_time = run_single(config, program, preload_il1=True)
        warm_time = run_single(config, program, preload_il1=True, preload_l2=True)
        assert cold_time > warm_time

    def test_store_buffer_forwarding_avoids_bus(self):
        config = micro_config()
        program = Program(name="fwd", body=(Store(0x100), Load(0x100)), iterations=1)
        programs: List[Optional[Program]] = [program]
        system = System(config, programs, trace=True, preload_il1=True, preload_l2=True)
        result = system.run()
        kinds = result.trace.count_by_kind()
        assert kinds.get("load", 0) == 0, "the load must be forwarded from the store buffer"
        assert kinds.get("store", 0) == 1


class TestStoreTiming:
    def test_store_retires_into_buffer_without_stall(self):
        config = micro_config(store_buffer_entries=8)
        program = Program(name="st", body=(Store(0x100), Nop(), Nop(), Nop()), iterations=1)
        time = run_single(config, program, preload_il1=True, preload_l2=True)
        # 1 cycle DL1 access for the store + 3 nops; draining happens off the
        # critical path.
        assert time == 4

    def test_full_store_buffer_stalls_the_core(self):
        config = micro_config(store_buffer_entries=1)
        body = tuple(Store(0x100 + 64 * index) for index in range(6))
        program = Program(name="stalls", body=body, iterations=1)
        time = run_single(config, program, preload_il1=True, preload_l2=True)
        # With a single-entry buffer the core is throttled by the bus drain
        # rate, so the run must take noticeably longer than 6 cycles.
        assert time > 6 + LBUS

    def test_stores_drain_through_the_bus(self):
        config = micro_config(store_buffer_entries=4)
        # Trailing nops keep the core busy long enough for all three buffered
        # stores to reach the bus before the program retires.
        body = tuple(Store(0x100 + 64 * index) for index in range(3)) + tuple(
            Nop() for _ in range(15)
        )
        program = Program(name="drain", body=body, iterations=1)
        system = System(config, [program], trace=True, preload_il1=True, preload_l2=True)
        result = system.run()
        assert result.trace.count_by_kind().get("store", 0) == 3


class TestInstructionFetch:
    def test_cold_ifetch_misses_reach_the_bus(self):
        config = micro_config()
        program = Program(name="code", body=tuple(Nop() for _ in range(16)), iterations=1)
        system = System(config, [program], trace=True, preload_l2=True)
        result = system.run()
        assert result.trace.count_by_kind().get("ifetch", 0) >= 1

    def test_warm_il1_removes_ifetch_traffic(self):
        config = micro_config()
        program = Program(name="code", body=tuple(Nop() for _ in range(16)), iterations=1)
        system = System(config, [program], trace=True, preload_il1=True, preload_l2=True)
        result = system.run()
        assert result.trace.count_by_kind().get("ifetch", 0) == 0

    def test_loop_body_only_cold_misses_once(self):
        config = micro_config()
        program = Program(name="loop", body=tuple(Nop() for _ in range(8)), iterations=10)
        system = System(config, [program], trace=True, preload_l2=True)
        result = system.run()
        # 8 nops * 4 bytes = 32 bytes = 1 line: exactly one ifetch miss.
        assert result.trace.count_by_kind().get("ifetch", 0) == 1


class TestCoreBookkeeping:
    def test_idle_core_reports_done(self):
        config = micro_config(num_cores=2)
        program = Program(name="p", body=(Nop(),), iterations=1)
        system = System(config, [program, None])
        assert system.cores[1].is_done
        system.run()
        assert system.cores[1].instructions_retired == 0

    def test_instruction_counts_match_program(self):
        config = micro_config()
        program = Program(name="p", body=(Load(0x100), Nop(), Store(0x140)), iterations=5)
        system = System(config, [program], preload_il1=True, preload_l2=True)
        result = system.run()
        assert result.instructions[0] == 15
        assert result.pmc.core[0].loads == 5
        assert result.pmc.core[0].stores == 5
        assert result.pmc.core[0].nops == 5

    def test_injection_time_equals_l1_latency(self):
        """The property Sections 3 and 5 rely on: delta_rsk = DL1 latency."""
        for l1_latency in (1, 2, 4):
            config = micro_config(l1_latency=l1_latency)
            stride = config.dl1.same_set_stride
            addresses = [index * stride for index in range(config.dl1.ways + 1)]
            program = Program(name="rsk-like", body=tuple(Load(a) for a in addresses), iterations=3)
            system = System(config, [program], trace=True, preload_il1=True, preload_l2=True)
            result = system.run()
            deltas = set(result.trace.injection_times(0, kinds=["load"]))
            assert deltas == {l1_latency}

    def test_done_cycle_recorded_once(self):
        config = micro_config()
        program = Program(name="p", body=(Nop(),), iterations=3)
        system = System(config, [program], preload_il1=True)
        result = system.run()
        assert result.done_cycles[0] == 3
        assert system.cores[0].state is CoreState.DONE
