"""Unit tests for the shared bus: posting, arbitration, delivery, tracing."""

from __future__ import annotations

from typing import List

import pytest

from repro.errors import SimulationError
from repro.sim.arbiter import FifoArbiter, RoundRobinArbiter, TdmaArbiter
from repro.sim.bus import Bus, BusRequest
from repro.sim.pmc import PerformanceCounters
from repro.sim.resource import NO_EVENT
from repro.sim.trace import TraceRecorder


def make_bus(num_ports: int = 3, service: int = 5, arbiter=None, trace=None, pmc=None) -> Bus:
    if arbiter is None:
        arbiter = RoundRobinArbiter(num_ports)
    return Bus(
        num_ports=num_ports,
        arbiter=arbiter,
        service_callback=lambda request, cycle: service,
        trace=trace,
        pmc=pmc,
    )


def make_request(port: int, ready: int, completions: List = None, kind: str = "load") -> BusRequest:
    def on_complete(request, cycle):
        if completions is not None:
            completions.append((request.port, cycle))

    return BusRequest(port=port, kind=kind, addr=0x100 * (port + 1), ready_cycle=ready,
                      on_complete=on_complete)


class TestPostingAndGranting:
    def test_request_granted_when_bus_free(self):
        bus = make_bus()
        request = make_request(0, ready=0)
        bus.post(request)
        granted = bus.arbitrate(0)
        assert granted is request
        assert request.grant_cycle == 0
        assert request.service_cycles == 5

    def test_request_not_granted_before_ready(self):
        bus = make_bus()
        bus.post(make_request(0, ready=10))
        assert bus.arbitrate(5) is None

    def test_invalid_port_rejected(self):
        bus = make_bus(num_ports=2)
        with pytest.raises(SimulationError):
            bus.post(make_request(5, ready=0))

    def test_only_one_grant_while_busy(self):
        bus = make_bus()
        bus.post(make_request(0, ready=0))
        bus.post(make_request(1, ready=0))
        assert bus.arbitrate(0) is not None
        assert bus.arbitrate(1) is None

    def test_busy_until_reflects_service(self):
        bus = make_bus(service=7)
        bus.post(make_request(0, ready=0))
        bus.arbitrate(0)
        assert bus.busy_until == 7
        assert bus.is_busy_at(6)
        assert not bus.is_busy_at(7)

    def test_non_positive_service_rejected(self):
        bus = Bus(2, RoundRobinArbiter(2), service_callback=lambda r, c: 0)
        bus.post(BusRequest(port=0, kind="load", addr=0, ready_cycle=0))
        with pytest.raises(SimulationError):
            bus.arbitrate(0)

    def test_mismatched_arbiter_port_count_rejected(self):
        with pytest.raises(SimulationError):
            Bus(3, RoundRobinArbiter(2), service_callback=lambda r, c: 1)


class TestDelivery:
    def test_completion_callback_fires_at_busy_until(self):
        completions = []
        bus = make_bus(service=4)
        bus.post(make_request(0, ready=0, completions=completions))
        bus.arbitrate(0)
        bus.deliver(3)
        assert completions == []
        bus.deliver(4)
        assert completions == [(0, 4)]

    def test_deliver_is_idempotent(self):
        completions = []
        bus = make_bus(service=2)
        bus.post(make_request(0, ready=0, completions=completions))
        bus.arbitrate(0)
        bus.deliver(2)
        bus.deliver(3)
        assert completions == [(0, 2)]

    def test_bus_free_for_arbitration_after_delivery(self):
        bus = make_bus(service=2)
        bus.post(make_request(0, ready=0))
        bus.post(make_request(1, ready=0))
        bus.arbitrate(0)
        bus.deliver(2)
        granted = bus.arbitrate(2)
        assert granted is not None and granted.port == 1


class TestRoundRobinTiming:
    def test_contention_delay_of_lowest_priority_request(self):
        """A request posted while all others are pending waits (Nc-1)*lbus."""
        lbus = 5
        completions = []
        bus = make_bus(num_ports=4, service=lbus)
        # Port 3 was granted most recently.
        bus.arbiter.notify_grant(0, 3)
        for port in range(4):
            bus.post(make_request(port, ready=0, completions=completions))
        cycle = 0
        grants = []
        while len(grants) < 4:
            bus.deliver(cycle)
            granted = bus.arbitrate(cycle)
            if granted is not None:
                grants.append((granted.port, granted.grant_cycle))
            cycle += 1
        assert grants == [(0, 0), (1, 5), (2, 10), (3, 15)]
        # Port 3 suffered exactly ubd = 3 * lbus.
        assert grants[-1][1] - 0 == 3 * lbus

    def test_work_conservation_skips_empty_ports(self):
        bus = make_bus(num_ports=4, service=2)
        bus.arbiter.notify_grant(0, 0)
        bus.post(make_request(0, ready=0))
        granted = bus.arbitrate(0)
        assert granted.port == 0


class TestContendersSnapshot:
    def test_contenders_counted_at_post(self):
        trace = TraceRecorder(enabled=True)
        bus = make_bus(num_ports=4, trace=trace)
        bus.post(make_request(1, ready=0))
        bus.post(make_request(2, ready=0))
        observed = make_request(0, ready=0)
        bus.post(observed)
        assert observed.record.contenders_at_ready == 2

    def test_in_service_request_counts_as_contender(self):
        trace = TraceRecorder(enabled=True)
        bus = make_bus(num_ports=4, trace=trace, service=10)
        bus.post(make_request(1, ready=0))
        bus.arbitrate(0)  # port 1 now occupies the bus, queue empty
        observed = make_request(0, ready=1)
        bus.post(observed)
        assert observed.record.contenders_at_ready == 1
        assert observed.record.bus_busy_at_ready

    def test_own_queue_not_counted(self):
        trace = TraceRecorder(enabled=True)
        bus = make_bus(num_ports=4, trace=trace)
        bus.post(make_request(0, ready=0))
        second = make_request(0, ready=1)
        bus.post(second)
        assert second.record.contenders_at_ready == 0


class TestTraceAndPmcIntegration:
    def test_trace_records_full_lifecycle(self):
        trace = TraceRecorder(enabled=True)
        bus = make_bus(service=3, trace=trace)
        bus.post(make_request(0, ready=2))
        bus.arbitrate(2)
        bus.deliver(5)
        assert len(trace) == 1
        record = trace.records[0]
        assert record.ready_cycle == 2
        assert record.grant_cycle == 2
        assert record.complete_cycle == 5
        assert record.service_cycles == 3
        assert record.contention_delay == 0

    def test_pmc_accumulates_busy_and_wait_cycles(self):
        pmc = PerformanceCounters(num_cores=2)
        bus = make_bus(num_ports=2, service=4, pmc=pmc)
        bus.post(make_request(0, ready=0))
        bus.post(make_request(1, ready=0))
        cycle = 0
        while pmc.total_requests() < 2:
            bus.deliver(cycle)
            bus.arbitrate(cycle)
            cycle += 1
        assert pmc.bus_busy_cycles == 8
        assert pmc.core[0].bus_requests == 1
        assert pmc.core[1].contention_cycles == 4


class TestNextActivityAndReset:
    def test_next_activity_while_busy(self):
        bus = make_bus(service=6)
        bus.post(make_request(0, ready=0))
        bus.arbitrate(0)
        assert bus.next_activity(1) == 6

    def test_next_activity_with_future_request(self):
        bus = make_bus()
        bus.post(make_request(0, ready=9))
        assert bus.next_activity(2) == 9

    def test_next_activity_idle(self):
        # Horizon contract (DESIGN.md 5.1): integer cycles only; "no event"
        # is the NO_EVENT sentinel, never float('inf').
        assert make_bus().next_activity(0) == NO_EVENT

    def test_next_activity_respects_tdma_schedule(self):
        arbiter = TdmaArbiter(2, slot_cycles=4)
        bus = make_bus(num_ports=2, arbiter=arbiter)
        bus.post(make_request(1, ready=1))
        assert bus.next_activity(1) == 4

    def test_fifo_bus_grants_by_readiness(self):
        bus = make_bus(num_ports=3, arbiter=FifoArbiter(3))
        bus.post(make_request(2, ready=0))
        bus.post(make_request(0, ready=3))
        granted = bus.arbitrate(3)
        assert granted.port == 2

    def test_reset_clears_queues_and_state(self):
        bus = make_bus()
        bus.post(make_request(0, ready=0))
        bus.arbitrate(0)
        bus.reset()
        assert not bus.has_pending()
        assert bus.current_request is None
        assert bus.granted_count == 0
