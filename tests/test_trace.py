"""Unit tests for the request trace recorder."""

from __future__ import annotations

import pytest

from repro.sim.trace import RequestRecord, TraceRecorder, merge_traces


def record(port=0, kind="load", ready=0, grant=2, complete=7, addr=0x100, contenders=0):
    return RequestRecord(
        port=port,
        kind=kind,
        addr=addr,
        ready_cycle=ready,
        grant_cycle=grant,
        complete_cycle=complete,
        service_cycles=complete - grant if grant >= 0 else 0,
        contenders_at_ready=contenders,
    )


class TestRequestRecord:
    def test_contention_delay(self):
        assert record(ready=3, grant=10).contention_delay == 7

    def test_contention_delay_before_grant_is_zero(self):
        assert record(grant=-1, complete=-1).contention_delay == 0

    def test_total_latency(self):
        assert record(ready=2, complete=11).total_latency == 9

    def test_completed_flag(self):
        assert record().completed
        assert not record(complete=-1).completed


class TestTraceRecorder:
    def test_disabled_recorder_drops_records(self):
        trace = TraceRecorder(enabled=False)
        trace.record(record())
        assert len(trace) == 0

    def test_enabled_recorder_keeps_records(self):
        trace = TraceRecorder(enabled=True)
        trace.record(record())
        trace.record(record(port=1))
        assert len(trace) == 2
        assert trace.ports() == (0, 1)

    def test_for_port_filters_by_port_and_kind(self):
        trace = TraceRecorder()
        trace.record(record(port=0, kind="load"))
        trace.record(record(port=0, kind="store"))
        trace.record(record(port=1, kind="load"))
        assert len(trace.for_port(0)) == 2
        assert len(trace.for_port(0, kinds=["load"])) == 1

    def test_completed_records_excludes_unfinished(self):
        trace = TraceRecorder()
        trace.record(record())
        trace.record(record(grant=-1, complete=-1))
        assert len(trace.completed_records()) == 1

    def test_contention_delays(self):
        trace = TraceRecorder()
        trace.record(record(ready=0, grant=5))
        trace.record(record(ready=10, grant=12))
        assert trace.contention_delays(0) == [5, 2]

    def test_injection_times_between_consecutive_requests(self):
        trace = TraceRecorder()
        trace.record(record(ready=0, grant=0, complete=9))
        trace.record(record(ready=10, grant=10, complete=19))
        trace.record(record(ready=25, grant=25, complete=34))
        assert trace.injection_times(0) == [1, 6]

    def test_injection_times_empty_for_single_request(self):
        trace = TraceRecorder()
        trace.record(record())
        assert trace.injection_times(0) == []

    def test_count_by_kind(self):
        trace = TraceRecorder()
        trace.record(record(kind="load"))
        trace.record(record(kind="load"))
        trace.record(record(kind="store"))
        assert trace.count_by_kind() == {"load": 2, "store": 1}

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(record())
        trace.clear()
        assert len(trace) == 0

    def test_iteration_yields_records(self):
        trace = TraceRecorder()
        trace.record(record())
        assert [r.port for r in trace] == [0]


class TestMergeTraces:
    def test_merge_sorts_by_grant_cycle(self):
        a = TraceRecorder()
        a.record(record(port=0, grant=10, complete=15))
        b = TraceRecorder()
        b.record(record(port=1, grant=2, complete=7))
        merged = merge_traces([a, b])
        assert [r.port for r in merged.records] == [1, 0]

    def test_merge_of_empty_traces(self):
        assert len(merge_traces([TraceRecorder(), TraceRecorder()])) == 0
