"""The event-port surface: cached horizons, invalidation rules, wake targets.

The event engine drives every resource through ``horizon`` /
``invalidate_horizon`` / ``wake_targets`` (see :mod:`repro.sim.resource`),
so the cache discipline — every mutation invalidates, a clean cache answers
without recomputation, a valid cache can never change the reported horizon —
is itself load-bearing simulator semantics and is pinned here at the unit
level (the engine-equivalence property tests pin it end to end).
"""

from __future__ import annotations

import pytest

from repro.config import DramConfig
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.bus import Bus, BusRequest
from repro.sim.memctrl import BankQueuedMemoryController, MemoryController
from repro.sim.resource import NO_EVENT, EventPort


def make_bus(num_ports=3, occupancy=5):
    return Bus(
        num_ports=num_ports,
        arbiter=RoundRobinArbiter(num_ports),
        service_callback=lambda request, cycle: occupancy,
    )


def post(bus, port=0, ready=0, addr=0x100):
    request = BusRequest(port=port, kind="load", addr=addr, ready_cycle=ready)
    bus.post(request)
    return request


class TestEventPortMixin:
    def test_horizon_caches_until_invalidated(self):
        class Counting(EventPort):
            resource_name = "counting"

            def __init__(self):
                self._init_event_port()
                self.computes = 0

            def next_event_cycle(self, cycle):
                self.computes += 1
                return 42

        port = Counting()
        assert port.horizon(0) == 42
        assert port.horizon(0) == 42
        assert port.horizon(7) == 42
        assert port.computes == 1  # clean cache answers without recomputing
        port.invalidate_horizon()
        assert port.horizon(7) == 42
        assert port.computes == 2

    def test_next_event_cycle_is_abstract(self):
        port = EventPort()
        port._init_event_port()
        with pytest.raises(NotImplementedError):
            port.horizon(0)


class TestBusEventPort:
    def test_idle_bus_reports_no_event(self):
        bus = make_bus()
        assert bus.horizon(0) == NO_EVENT

    def test_post_on_free_bus_invalidates(self):
        bus = make_bus()
        assert bus.horizon(0) == NO_EVENT  # warm the cache
        post(bus, ready=3)
        assert bus.horizon(0) == 3

    def test_post_on_busy_bus_keeps_the_cache_valid(self):
        """While a transaction is in flight the horizon is its delivery at
        busy_until no matter what the queues hold, so a post must *not*
        dirty the cache — this is what keeps the event engine at one
        arbitrate call per grant."""
        bus = make_bus(occupancy=5)
        post(bus, port=0, ready=0)
        bus.arbitrate(0)
        assert bus.horizon(0) == 5
        post(bus, port=1, ready=1)
        assert not bus._horizon_dirty
        assert bus.horizon(1) == 5
        # The delivery re-invalidates; the recompute then sees the queue.
        bus.deliver(5)
        assert bus.horizon(5) == 5  # port 1's request is ready and grantable

    def test_grant_invalidates_and_horizon_becomes_delivery(self):
        bus = make_bus(occupancy=7)
        post(bus, ready=0)
        assert bus.horizon(0) == 0
        bus.arbitrate(0)
        assert bus.horizon(0) == 7

    def test_deliver_publishes_wake_target_and_resets_it(self):
        woken = []
        bus = make_bus()
        request = BusRequest(
            port=1,
            kind="load",
            addr=0x40,
            ready_cycle=0,
            origin_core=1,
            on_complete=lambda req, cycle: woken.append((req.origin_core, cycle)),
        )
        bus.post(request)
        bus.arbitrate(0)
        assert bus.wake_targets == []
        bus.deliver(5)
        assert bus.wake_targets == [1]
        assert woken == [(1, 5)]
        # The next deliver call resets the surface.
        bus.deliver(6)
        assert bus.wake_targets == []

    def test_reset_restores_the_initial_port_state(self):
        bus = make_bus()
        post(bus, ready=0)
        bus.arbitrate(0)
        bus.deliver(5)
        bus.reset()
        assert bus.wake_targets == []
        assert bus.horizon(0) == NO_EVENT


class TestMemoryControllerEventPort:
    def test_enqueue_and_deliver_invalidate(self):
        controller = MemoryController(DramConfig(), read_callback=lambda pending, cycle: None)
        assert controller.horizon(0) == NO_EVENT
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        assert controller.horizon(0) == pending.complete_cycle
        controller.deliver(pending.complete_cycle)
        assert controller.horizon(pending.complete_cycle) == NO_EVENT
        assert controller.wake_targets == []  # responses wake via the bus

    def test_bank_queue_enqueue_and_grant_invalidate(self):
        controller = BankQueuedMemoryController(
            DramConfig(num_banks=2),
            read_callback=lambda pending, cycle: None,
            num_ports=2,
        )
        assert controller.horizon(0) == NO_EVENT
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        assert controller.horizon(0) == 0  # a free bank can grant now
        controller.arbitrate(0)
        assert controller.horizon(0) == pending.complete_cycle
