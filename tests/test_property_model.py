"""Property-based tests (hypothesis) for the analytical contention model."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.model import (
    ContentionModel,
    gamma_of_delta,
    predicted_store_slowdown_per_request,
    synchrony_timeline,
    ubd_analytical,
)
from repro.analysis.sawtooth import SawtoothAnalyzer

ubds = st.integers(min_value=1, max_value=200)
deltas = st.integers(min_value=0, max_value=2000)
cores = st.integers(min_value=2, max_value=8)
lbuses = st.integers(min_value=1, max_value=20)


class TestGammaInvariants:
    @given(delta=deltas, ubd=ubds)
    def test_gamma_is_bounded_by_ubd(self, delta, ubd):
        assert 0 <= gamma_of_delta(delta, ubd) <= ubd

    @given(delta=deltas, ubd=ubds)
    def test_gamma_is_periodic_with_period_ubd(self, delta, ubd):
        assert gamma_of_delta(delta + ubd, ubd) == gamma_of_delta(max(delta, 1), ubd) or (
            # delta = 0 is the special saturated case: gamma(0) = ubd while
            # gamma(ubd) = 0, so periodicity only holds for delta >= 1.
            delta == 0
        )

    @given(delta=st.integers(min_value=1, max_value=2000), ubd=ubds)
    def test_gamma_never_reaches_ubd_for_positive_delta(self, delta, ubd):
        assert gamma_of_delta(delta, ubd) <= ubd - 1 or ubd == 1

    @given(ubd=ubds)
    def test_gamma_zero_delta_is_ubd(self, ubd):
        assert gamma_of_delta(0, ubd) == ubd

    @given(
        delta=st.integers(min_value=1, max_value=500),
        ubd=st.integers(min_value=2, max_value=100),
    )
    def test_gamma_plus_delta_offset_is_multiple_of_ubd(self, delta, ubd):
        """Within one round, waiting gamma cycles lands exactly on the next
        grant opportunity: (delta + gamma) is always a multiple of ubd."""
        gamma = gamma_of_delta(delta, ubd)
        assert (delta + gamma) % ubd == 0

    @given(cores=cores, lbus=lbuses)
    def test_equation1_scales_linearly(self, cores, lbus):
        assert ubd_analytical(cores, lbus) == (cores - 1) * lbus
        assert ubd_analytical(cores + 1, lbus) - ubd_analytical(cores, lbus) == lbus


class TestTimelineAgreesWithEquation2:
    @settings(max_examples=60, deadline=None)
    @given(
        cores=st.integers(min_value=2, max_value=6),
        lbus=st.integers(min_value=1, max_value=12),
        delta=st.integers(min_value=0, max_value=150),
    )
    def test_schedule_derivation_matches_closed_form(self, cores, lbus, delta):
        ubd = ubd_analytical(cores, lbus)
        timeline = synchrony_timeline(cores, lbus, delta, rounds=4)
        assert timeline["contention"] == gamma_of_delta(delta, ubd)


class TestStoreModelInvariants:
    @given(
        k=st.integers(min_value=0, max_value=200),
        cores=st.integers(min_value=2, max_value=6),
        lbus=lbuses,
        delta_rsk=st.integers(min_value=0, max_value=8),
    )
    def test_store_slowdown_nonnegative_and_bounded(self, k, cores, lbus, delta_rsk):
        ubd = ubd_analytical(cores, lbus)
        value = predicted_store_slowdown_per_request(k, ubd, lbus, delta_rsk)
        assert 0 <= value <= ubd

    @given(
        cores=st.integers(min_value=2, max_value=6),
        lbus=lbuses,
        delta_rsk=st.integers(min_value=0, max_value=8),
    )
    def test_store_slowdown_is_non_increasing_in_k(self, cores, lbus, delta_rsk):
        ubd = ubd_analytical(cores, lbus)
        # Sweep past the contended drain interval so the curve must reach zero.
        k_limit = ubd + lbus + 2
        values = [
            predicted_store_slowdown_per_request(k, ubd, lbus, delta_rsk)
            for k in range(0, k_limit)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))
        assert values[-1] == 0


class TestSawtoothDetectionRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(
        ubd=st.integers(min_value=2, max_value=40),
        delta_rsk=st.integers(min_value=1, max_value=6),
        requests=st.integers(min_value=10, max_value=500),
    )
    def test_detector_recovers_the_period_that_generated_the_series(self, ubd, delta_rsk, requests):
        """Generate dbus(k) from Equation 2 and check the analyzer recovers ubd
        regardless of the (hidden) injection time and scaling."""
        ks = list(range(1, 3 * ubd + 2))
        values = [gamma_of_delta(delta_rsk + k, ubd) * requests for k in ks]
        estimate = SawtoothAnalyzer(ks, values).estimate()
        assert estimate.period_k == ubd

    @settings(max_examples=25, deadline=None)
    @given(
        ubd=st.integers(min_value=3, max_value=40),
        delta_nop=st.integers(min_value=1, max_value=4),
    )
    def test_period_cycles_scale_with_delta_nop(self, ubd, delta_nop):
        """With a slower nop the sweep samples the saw-tooth coarsely; the
        period in k shrinks accordingly but converts back to the same cycles
        when ubd is a multiple of delta_nop (Section 4.2)."""
        effective_ubd = ubd * delta_nop
        ks = list(range(1, 3 * ubd + 2))
        values = [gamma_of_delta(1 + k * delta_nop, effective_ubd) * 100 for k in ks]
        estimate = SawtoothAnalyzer(ks, values).estimate(delta_nop=delta_nop)
        assert estimate.period_cycles == effective_ubd
