"""Unit tests for the statistics helpers."""

from __future__ import annotations

import pytest

from repro.analysis.statistics import (
    SeriesSummary,
    empirical_exceedance,
    envelope_over_runs,
    high_water_mark,
    summarize,
)
from repro.errors import AnalysisError


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1, 2, 3, 4])
        assert summary.count == 4
        assert summary.minimum == 1
        assert summary.maximum == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)

    def test_spread_and_relative_spread(self):
        summary = summarize([10, 20])
        assert summary.spread == 10
        assert summary.relative_spread == pytest.approx(10 / 15)

    def test_constant_series(self):
        summary = summarize([7, 7, 7])
        assert summary.spread == 0
        assert summary.std == 0.0

    def test_relative_spread_with_zero_mean(self):
        summary = summarize([-1, 1])
        assert summary.relative_spread == 0.0

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])


class TestExceedanceAndMax:
    def test_exceedance_fraction(self):
        values = [1, 2, 3, 4, 5]
        assert empirical_exceedance(values, 3) == pytest.approx(0.4)

    def test_exceedance_zero_when_bound_holds(self):
        assert empirical_exceedance([10, 20, 26], 27) == 0.0

    def test_exceedance_is_strict(self):
        assert empirical_exceedance([27, 27], 27) == 0.0

    def test_exceedance_empty_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_exceedance([], 1)

    def test_high_water_mark(self):
        assert high_water_mark([3, 9, 4]) == 9.0

    def test_high_water_mark_empty_rejected(self):
        with pytest.raises(AnalysisError):
            high_water_mark([])


class TestEnvelope:
    def test_pointwise_maximum(self):
        runs = [[1, 5, 2], [3, 1, 4]]
        assert envelope_over_runs(runs) == [3, 5, 4]

    def test_single_run_is_identity(self):
        assert envelope_over_runs([[1, 2, 3]]) == [1, 2, 3]

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(AnalysisError):
            envelope_over_runs([[1, 2], [1, 2, 3]])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            envelope_over_runs([])
