"""Tests for the parallel campaign engine (spec, runner, cache, artifacts)."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    SCHEMA_VERSION,
    CampaignSpec,
    CampaignStreamWriter,
    ParallelRunner,
    ResultCache,
    RunDescriptor,
    campaign_digest,
    compact_shard,
    default_shard_size,
    execute_run,
    execute_shard,
    load_campaign,
    load_manifest,
    load_results,
    load_summary,
    workload_run_from_record,
    write_campaign_artifacts,
)
from repro.config import config_from_dict, get_preset, small_config
from repro.errors import AnalysisError, ConfigurationError, MethodologyError
from repro.methodology.workloads import run_workload_campaign
from repro.report.campaign import render_campaign_summary

#: A campaign small enough for unit tests yet covering both run kinds.
TINY_SPEC = CampaignSpec(
    presets=("small",),
    num_workloads=2,
    iterations=4,
    rsk_iterations=20,
)


# --------------------------------------------------------------------------- #
# Configuration serialisation (the campaign engine's transport format).
# --------------------------------------------------------------------------- #


class TestConfigSerialisation:
    def test_round_trip_preserves_equality(self):
        for preset in ("ref", "var", "small"):
            config = get_preset(preset)
            assert config_from_dict(config.to_dict()) == config

    def test_round_trip_survives_json(self):
        config = small_config()
        rebuilt = config_from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config
        assert rebuilt.digest() == config.digest()

    def test_digest_changes_with_any_field(self):
        config = small_config()
        assert config.digest() != config.with_overrides(num_cores=2).digest()
        assert config.digest() != config.with_overrides(nop_latency=2).digest()

    def test_malformed_dict_rejected(self):
        data = small_config().to_dict()
        del data["bus"]
        with pytest.raises(ConfigurationError):
            config_from_dict(data)


# --------------------------------------------------------------------------- #
# Spec expansion and descriptor digests.
# --------------------------------------------------------------------------- #


class TestCampaignSpec:
    def test_expansion_is_deterministic(self):
        assert TINY_SPEC.expand() == TINY_SPEC.expand()

    def test_grid_size(self):
        spec = CampaignSpec(
            presets=("small", "ref"),
            arbiters=("round_robin", "tdma"),
            seeds=(1, 2, 3),
            num_workloads=2,
        )
        descriptors = spec.expand()
        # presets x arbiters x seeds x (workloads + rsk reference)
        assert len(descriptors) == 2 * 2 * 3 * (2 + 1)
        assert [d.run_id for d in descriptors] == [f"{i:05d}" for i in range(len(descriptors))]

    def test_arbiter_override_lands_in_config(self):
        spec = CampaignSpec(presets=("small",), arbiters=("tdma",), num_workloads=1)
        assert all(d.config.bus.arbitration == "tdma" for d in spec.expand())

    def test_topology_axis_expands_the_grid(self):
        spec = CampaignSpec(
            presets=("small",),
            topologies=("bus_only", "bus_bank_queues"),
            num_workloads=1,
        )
        descriptors = spec.expand()
        # topologies x (workloads + rsk reference)
        assert len(descriptors) == 2 * (1 + 1)
        names = {d.config.topology.name for d in descriptors}
        assert names == {"bus_only", "bus_bank_queues"}
        # Different resource chains must never share cache entries.
        digests = {d.config.topology.name: d.digest() for d in descriptors if d.kind == "rsk"}
        assert digests["bus_only"] != digests["bus_bank_queues"]

    def test_topology_override_keeps_preset_mem_arbitration(self):
        """The axis overrides the topology *name* only: a preset with
        non-default bank-queue arbitration must not be silently reset to
        FIFO banks when --topology selects the same (or another) chain."""
        from repro.config import PRESETS, TopologyConfig, small_config

        PRESETS["_rr_banks"] = lambda **overrides: small_config(
            topology=TopologyConfig(name="bus_bank_queues", mem_arbitration="round_robin"),
            **overrides,
        )
        try:
            spec = CampaignSpec(
                presets=("_rr_banks",),
                topologies=("bus_bank_queues",),
                num_workloads=1,
            )
            for descriptor in spec.expand():
                assert descriptor.config.topology.mem_arbitration == "round_robin"
        finally:
            PRESETS.pop("_rr_banks")

    def test_default_keeps_preset_topology(self):
        spec = CampaignSpec(presets=("multi_resource",), num_workloads=1, iterations=4)
        assert all(d.config.topology.name == "bus_bank_queues" for d in spec.expand())

    def test_unknown_topology_rejected(self):
        with pytest.raises(MethodologyError):
            CampaignSpec(presets=("small",), topologies=("mesh",))

    def test_contender_count_limits_occupied_cores(self):
        spec = CampaignSpec(presets=("small",), contender_counts=(1,), num_workloads=2)
        for descriptor in spec.expand():
            assert len(descriptor.tasks) == 2
            assert descriptor.contenders == 1

    def test_too_many_contenders_rejected(self):
        spec = CampaignSpec(presets=("small",), contender_counts=(3,))
        with pytest.raises(MethodologyError):
            spec.expand()

    def test_empty_campaign_rejected(self):
        spec = CampaignSpec(num_workloads=0, include_rsk_reference=False)
        with pytest.raises(MethodologyError):
            spec.expand()

    def test_digest_ignores_labels_but_not_inputs(self):
        descriptor = TINY_SPEC.expand()[0]
        relabelled = RunDescriptor(
            run_id="99999",
            preset="other-label",
            config=descriptor.config,
            kind=descriptor.kind,
            tasks=descriptor.tasks,
            observed_core=descriptor.observed_core,
            iterations=descriptor.iterations,
            seed=descriptor.seed,
        )
        assert relabelled.digest() == descriptor.digest()
        reseeded = RunDescriptor(
            run_id=descriptor.run_id,
            preset=descriptor.preset,
            config=descriptor.config,
            kind=descriptor.kind,
            tasks=descriptor.tasks,
            observed_core=descriptor.observed_core,
            iterations=descriptor.iterations,
            seed=descriptor.seed + 1,
        )
        assert reseeded.digest() != descriptor.digest()

    def test_digest_ignores_config_name_label(self):
        descriptor = TINY_SPEC.expand()[0]
        relabelled_config = descriptor.config.with_overrides(name="relabelled")
        twin = RunDescriptor(
            run_id=descriptor.run_id,
            preset=descriptor.preset,
            config=relabelled_config,
            kind=descriptor.kind,
            tasks=descriptor.tasks,
            observed_core=descriptor.observed_core,
            iterations=descriptor.iterations,
            seed=descriptor.seed,
        )
        assert twin.digest() == descriptor.digest()

    def test_descriptor_validation(self):
        descriptor = TINY_SPEC.expand()[0]
        with pytest.raises(MethodologyError):
            RunDescriptor(
                run_id="0",
                preset="small",
                config=descriptor.config,
                kind="bogus",
                tasks=descriptor.tasks,
                observed_core=0,
                iterations=1,
                seed=0,
            )
        with pytest.raises(MethodologyError):
            RunDescriptor(
                run_id="0",
                preset="small",
                config=descriptor.config,
                kind="rsk",
                tasks=tuple("rsk" for _ in range(descriptor.config.num_cores + 1)),
                observed_core=0,
                iterations=1,
                seed=0,
            )


# --------------------------------------------------------------------------- #
# Execution: serial/parallel equivalence and caching.
# --------------------------------------------------------------------------- #


class TestParallelRunner:
    def test_jobs_must_be_positive(self):
        with pytest.raises(MethodologyError):
            ParallelRunner(jobs=0)

    def test_records_follow_descriptor_order(self):
        outcome = ParallelRunner(jobs=1).run(TINY_SPEC.expand())
        assert [r["run_id"] for r in outcome.records] == [d.run_id for d in TINY_SPEC.expand()]
        assert outcome.stats["simulated"] == len(outcome.records)
        assert outcome.stats["cached"] == 0

    def test_parallel_and_serial_artifacts_identical(self, tmp_path):
        descriptors = TINY_SPEC.expand()
        serial = write_campaign_artifacts(
            ParallelRunner(jobs=1).run(descriptors), tmp_path / "serial"
        )
        parallel = write_campaign_artifacts(
            ParallelRunner(jobs=2).run(descriptors), tmp_path / "parallel"
        )
        assert serial.results_path.read_bytes() == parallel.results_path.read_bytes()
        serial_summary = load_summary(serial.summary_path)
        parallel_summary = load_summary(parallel.summary_path)
        del serial_summary["timing"], parallel_summary["timing"]
        assert serial_summary == parallel_summary

    def test_warm_cache_performs_zero_simulations(self, tmp_path):
        descriptors = TINY_SPEC.expand()
        cache = ResultCache(tmp_path / "cache")
        cold = ParallelRunner(jobs=1, cache=cache).run(descriptors)
        assert cold.stats["simulated"] == len(descriptors)
        warm = ParallelRunner(jobs=2, cache=cache).run(descriptors)
        assert warm.stats["simulated"] == 0
        assert warm.stats["cached"] == len(descriptors)
        assert warm.records == cold.records

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        descriptors = TINY_SPEC.expand()[:1]
        cache = ResultCache(tmp_path / "cache")
        ParallelRunner(jobs=1, cache=cache).run(descriptors)
        for path in cache.directory.glob("*.json"):
            path.write_text("{ not json", encoding="utf-8")
        rerun = ParallelRunner(jobs=1, cache=cache).run(descriptors)
        assert rerun.stats["simulated"] == 1

    def test_cache_entry_under_wrong_name_is_a_miss(self, tmp_path):
        descriptors = TINY_SPEC.expand()[:2]
        cache = ResultCache(tmp_path / "cache")
        ParallelRunner(jobs=1, cache=cache).run(descriptors)
        first, second = (d.digest() for d in descriptors)
        # Simulate a mis-synced cache: the second record under the first name.
        (cache.directory / f"{first}.json").write_bytes(
            (cache.directory / f"{second}.json").read_bytes()
        )
        rerun = ParallelRunner(jobs=1, cache=cache).run(descriptors)
        assert rerun.stats["simulated"] == 1
        assert rerun.records[0]["digest"] == first

    def test_duplicate_descriptors_simulated_once(self):
        descriptor = TINY_SPEC.expand()[0]
        twin = RunDescriptor(
            run_id="00001",
            preset=descriptor.preset,
            config=descriptor.config,
            kind=descriptor.kind,
            tasks=descriptor.tasks,
            observed_core=descriptor.observed_core,
            iterations=descriptor.iterations,
            seed=descriptor.seed,
        )
        outcome = ParallelRunner(jobs=1).run([descriptor, twin])
        assert outcome.stats["simulated"] == 1
        first, second = outcome.records
        assert first["run_id"] == "00000" and second["run_id"] == "00001"
        assert {k: v for k, v in first.items() if k != "run_id"} == {
            k: v for k, v in second.items() if k != "run_id"
        }

    def test_rsk_records_report_slowdown_and_delays(self):
        descriptors = [d for d in TINY_SPEC.expand() if d.kind == "rsk"]
        record = execute_run(descriptors[0])
        metrics = record["metrics"]
        assert metrics["slowdown"] == (
            metrics["execution_time"] - metrics["isolation"]["execution_time"]
        )
        assert metrics["slowdown"] > 0
        config = config_from_dict(record["config"])
        assert 0 < metrics["max_contention_delay"] <= config.ubd


# --------------------------------------------------------------------------- #
# Integration with the legacy workload campaign API.
# --------------------------------------------------------------------------- #


class TestWorkloadCampaignBridge:
    def test_runner_path_matches_legacy_serial_path(self):
        config = small_config()
        legacy = run_workload_campaign(config, num_workloads=3, observed_iterations=5, seed=7)
        engine = run_workload_campaign(
            config,
            num_workloads=3,
            observed_iterations=5,
            seed=7,
            runner=ParallelRunner(jobs=2),
        )
        assert legacy == engine

    def test_workload_run_from_record_rejects_rsk_records(self):
        descriptor = next(d for d in TINY_SPEC.expand() if d.kind == "rsk")
        with pytest.raises(MethodologyError):
            workload_run_from_record(execute_run(descriptor))


# --------------------------------------------------------------------------- #
# Artifacts and the report renderer.
# --------------------------------------------------------------------------- #


class TestArtifacts:
    def test_load_round_trip(self, tmp_path):
        outcome = ParallelRunner(jobs=1).run(TINY_SPEC.expand())
        artifacts = write_campaign_artifacts(outcome, tmp_path / "campaign")
        records, summary = load_campaign(artifacts.directory)
        assert records == list(outcome.records)
        assert summary["total_runs"] == len(outcome.records)
        assert "timing" in summary

    def test_missing_files_raise_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_results(tmp_path / "nope.jsonl")
        with pytest.raises(AnalysisError):
            load_summary(tmp_path / "nope.json")

    def test_malformed_results_line_raises(self, tmp_path):
        path = tmp_path / "results.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(AnalysisError):
            load_results(path)

    def test_arbiter_sweep_buckets_stay_separate(self):
        spec = CampaignSpec(
            presets=("small",),
            arbiters=("round_robin", "tdma"),
            num_workloads=1,
            iterations=4,
            rsk_iterations=20,
        )
        summary = ParallelRunner(jobs=1).run(spec.expand()).summary()
        platforms = summary["per_platform"]
        assert set(platforms) == {"small/round_robin", "small/tdma"}
        # Equation 1 bounds round-robin (and FIFO) arbitration only; delays
        # measured under TDMA must never be reported against that bound.
        round_robin = platforms["small/round_robin"]
        tdma = platforms["small/tdma"]
        assert round_robin["analytical_ubd"] == 6
        assert tdma["analytical_ubd"] is None
        assert round_robin["rsk"]["max_contention_delay"] <= 6
        assert tdma["rsk"]["max_contention_delay"] > 6

    def test_topology_sweep_buckets_stay_separate(self):
        spec = CampaignSpec(
            presets=("small",),
            topologies=("bus_only", "bus_bank_queues"),
            num_workloads=1,
            iterations=4,
            rsk_iterations=20,
        )
        outcome = ParallelRunner(jobs=1).run(spec.expand())
        assert {record["topology"] for record in outcome.records} == {
            "bus_only",
            "bus_bank_queues",
        }
        summary = outcome.summary()
        platforms = summary["per_platform"]
        # The historical key survives for the paper's platform; topology
        # sweeps get their own bucket so delays never merge across chains.
        assert set(platforms) == {
            "small/round_robin",
            "small/round_robin/bus_bank_queues/fifo",
        }
        assert summary["topologies"] == ["bus_bank_queues", "bus_only"]
        chained = platforms["small/round_robin/bus_bank_queues/fifo"]
        assert chained["topology"] == "bus_bank_queues"
        assert chained["mem_arbitration"] == "fifo"
        assert platforms["small/round_robin"]["mem_arbitration"] is None
        assert chained["end_to_end_ubd"] is not None
        assert chained["end_to_end_ubd"] > chained["analytical_ubd"]
        assert platforms["small/round_robin"]["end_to_end_ubd"] is None

    def test_summary_renders_both_workload_classes(self):
        outcome = ParallelRunner(jobs=1).run(TINY_SPEC.expand())
        text = render_campaign_summary(outcome.summary())
        assert "EEMBC-like workloads" in text
        assert "rsk reference workloads" in text
        assert "contenders=" in text
        assert "simulated" in text


# --------------------------------------------------------------------------- #
# Schema 4: per-resource measured-bound fields.
# --------------------------------------------------------------------------- #


class TestPerResourceArtifacts:
    """SCHEMA_VERSION 4: rsk records and summaries carry the per-resource
    observed worst cases next to the analytical terms, and the fields
    round-trip through the JSON artifacts."""

    @pytest.fixture(scope="class")
    def split_bus_outcome(self):
        spec = CampaignSpec(
            presets=("small",),
            topologies=("split_bus",),
            num_workloads=1,
            iterations=4,
            rsk_iterations=20,
        )
        return ParallelRunner(jobs=1).run(spec.expand())

    def test_schema_version_is_4(self, split_bus_outcome):
        from repro.campaign.spec import SCHEMA_VERSION

        assert SCHEMA_VERSION == 4
        assert all(r["schema"] == 4 for r in split_bus_outcome.records)

    def test_rsk_records_carry_stage_worst_cases(self, split_bus_outcome):
        record = next(r for r in split_bus_outcome.records if r["kind"] == "rsk")
        metrics = record["metrics"]
        config = config_from_dict(record["config"])
        assert "stage_worst_case" in metrics
        # The campaign's rsk reference runs are L2-preloaded, so only the
        # bus stage sees traffic — and its worst case obeys the bus term.
        assert metrics["stage_worst_case"]["bus"] <= config.ubd_terms["bus"]
        assert metrics["memory_requests"] == 0
        assert metrics["isolation"]["memory_requests"] == 0

    def test_summary_buckets_carry_analytical_terms(self, split_bus_outcome):
        summary = split_bus_outcome.summary()
        (bucket,) = summary["per_platform"].values()
        assert bucket["analytical_terms"] == {
            "bus": 6,
            "memory": 84,
            "bus_response": 2,
        }
        assert bucket["end_to_end_ubd"] == 92
        assert bucket["rsk"]["stage_worst_case"]["bus"] <= 6

    def test_per_resource_fields_round_trip(self, split_bus_outcome, tmp_path):
        artifacts = write_campaign_artifacts(split_bus_outcome, tmp_path / "c")
        records, summary = load_campaign(artifacts.directory)
        assert records == list(split_bus_outcome.records)
        record = next(r for r in records if r["kind"] == "rsk")
        assert record["metrics"]["stage_worst_case"] == {
            "bus": record["metrics"]["stage_worst_case"]["bus"]
        }
        (bucket,) = summary["per_platform"].values()
        assert bucket["analytical_terms"]["bus_response"] == 2

    def test_unfair_arbiter_buckets_report_no_terms(self):
        spec = CampaignSpec(
            presets=("small",),
            arbiters=("fixed_priority",),
            num_workloads=1,
            iterations=4,
            rsk_iterations=20,
        )
        outcome = ParallelRunner(jobs=1).run(spec.expand())
        (bucket,) = outcome.summary()["per_platform"].values()
        assert bucket["analytical_terms"] is None
        assert bucket["analytical_ubd"] is None


# --------------------------------------------------------------------------- #
# Streaming artifacts and the campaign manifest.
# --------------------------------------------------------------------------- #


class TestStreaming:
    def _stream(self, tmp_path, jobs, shard_size=None):
        descriptors = TINY_SPEC.expand()
        stream = CampaignStreamWriter(tmp_path / f"stream-{jobs}", checkpoint_interval=0.0)
        outcome = ParallelRunner(jobs=jobs, shard_size=shard_size).run(
            descriptors, stream=stream
        )
        return stream.finalize(outcome.summary()), outcome

    def test_streamed_artifacts_match_one_shot_bytes(self, tmp_path):
        """Streaming changes when artifacts appear, never what they
        contain: results.jsonl and campaign.json must be byte-identical
        to write_campaign_artifacts, for serial and parallel runners."""
        one_shot = write_campaign_artifacts(
            ParallelRunner(jobs=1).run(TINY_SPEC.expand()), tmp_path / "one-shot"
        )
        for jobs in (1, 2):
            streamed, _ = self._stream(tmp_path, jobs, shard_size=1)
            assert streamed.results_path.read_bytes() == one_shot.results_path.read_bytes()
            assert streamed.manifest_path.read_bytes() == one_shot.manifest_path.read_bytes()

    def test_finalized_manifest_is_completed_and_identifies_the_campaign(self, tmp_path):
        streamed, outcome = self._stream(tmp_path, 2)
        manifest = load_manifest(streamed.directory)
        assert manifest == {
            "schema": SCHEMA_VERSION,
            "campaign_id": campaign_digest([d.digest() for d in TINY_SPEC.expand()]),
            "total_runs": len(outcome.records),
            "completed": True,
        }

    def test_mid_flight_checkpoint_is_partial_and_loadable(self, tmp_path):
        stream = CampaignStreamWriter(tmp_path / "c", checkpoint_interval=0.0)
        records = ParallelRunner(jobs=1).run(TINY_SPEC.expand()).records
        stream.begin("cid", len(records))
        stream.append(records[:1])
        partial_records, partial_summary = load_campaign(stream.directory)
        assert partial_records == list(records[:1])
        assert partial_summary["timing"] == {
            "partial": True,
            "emitted": 1,
            "total_runs": len(records),
        }
        assert load_manifest(stream.directory)["completed"] is False
        stream.abandon()

    def test_crash_mid_campaign_leaves_an_incomplete_manifest(self, tmp_path):
        """A runner failure must abandon the stream: whatever was emitted
        stays on disk, and the manifest keeps completed: false — the crash
        signature the audit downgrades to WARN instead of failing."""
        descriptors = TINY_SPEC.expand()
        stream = CampaignStreamWriter(tmp_path / "crashed", checkpoint_interval=0.0)
        boom = RuntimeError("simulated crash")

        class ExplodingCache:
            def get_many(self, digests):
                return {}

            def put_many(self, items):
                raise boom

        with pytest.raises(RuntimeError, match="simulated crash"):
            ParallelRunner(jobs=1, cache=ExplodingCache()).run(descriptors, stream=stream)
        assert load_manifest(stream.directory)["completed"] is False
        assert stream._handle is None  # stream closed, not leaked

    def test_append_before_begin_raises(self, tmp_path):
        stream = CampaignStreamWriter(tmp_path / "c")
        with pytest.raises(AnalysisError, match="before begin"):
            stream.append([{"digest": "d"}])

    def test_unreadable_manifest_raises(self, tmp_path):
        (tmp_path / "campaign.json").write_text("{ torn", encoding="utf-8")
        with pytest.raises(AnalysisError, match="manifest"):
            load_manifest(tmp_path)
        (tmp_path / "campaign.json").write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(AnalysisError, match="JSON object"):
            load_manifest(tmp_path)

    def test_missing_manifest_is_a_legacy_layout(self, tmp_path):
        assert load_manifest(tmp_path) is None


# --------------------------------------------------------------------------- #
# Shard planning.
# --------------------------------------------------------------------------- #


class TestSharding:
    def test_compact_shard_dedups_shared_configs(self):
        """Grid points expanded from one spec share ArchConfig objects;
        a shard must serialise each distinct config once, not per run."""
        pending = [(d.digest(), d) for d in TINY_SPEC.expand()]
        shard = compact_shard(0, pending)
        assert len(shard.configs) == 1  # one platform in TINY_SPEC
        assert all(run.config_index == 0 for run in shard.runs)
        assert [run.digest for run in shard.runs] == [digest for digest, _ in pending]

    def test_shard_execution_matches_run_execution(self):
        descriptors = TINY_SPEC.expand()
        shard = compact_shard(3, [(d.digest(), d) for d in descriptors])
        index, results = execute_shard(shard)
        assert index == 3
        assert [digest for digest, _ in results] == [d.digest() for d in descriptors]
        for (_, record), descriptor in zip(results, descriptors):
            assert record == execute_run(descriptor)

    def test_default_shard_size_bounds(self):
        assert default_shard_size(0, 4) == 1
        assert default_shard_size(1, 1) == 1
        assert default_shard_size(100, 4) >= 1
        # Enough shards for load balance: at least ~4 per worker.
        assert default_shard_size(100, 4) <= 100 // (4 * 4) + 1

    def test_explicit_shard_size_is_respected(self, tmp_path):
        descriptors = TINY_SPEC.expand()
        outcome = ParallelRunner(jobs=2, shard_size=1).run(descriptors)
        assert outcome.stats["shards"] == len(descriptors)
        assert outcome.stats["shard_size"] == 1
        assert outcome.records == ParallelRunner(jobs=1).run(descriptors).records

    def test_shard_size_must_be_positive(self):
        with pytest.raises(MethodologyError):
            ParallelRunner(jobs=1, shard_size=0)
