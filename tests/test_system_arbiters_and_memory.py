"""System-level tests for alternative arbiters and the L2-miss / DRAM path.

The unit tests cover the arbiters and the memory controller in isolation;
these tests exercise them through the full system, where the interesting
interactions (response-port arbitration, TDMA slotting of real request
streams, priority starvation pressure) actually happen.
"""

from __future__ import annotations

import pytest

from repro.analysis.contention import contention_histogram
from repro.config import BusConfig, small_config
from repro.kernels.rsk import build_rsk
from repro.methodology.experiment import ExperimentRunner, build_contender_set
from repro.sim.arbiter import FifoArbiter, FixedPriorityArbiter, TdmaArbiter
from repro.sim.isa import Load, Program
from repro.sim.system import System

from test_core import micro_config


def run_rsk_under_arbiter(config, arbiter, iterations=40, observed_core=0):
    scua = build_rsk(config, observed_core, iterations=iterations)
    contenders = build_contender_set(config, scua_core=observed_core)
    programs = [None] * config.num_cores
    programs[observed_core] = scua
    for core, program in contenders.items():
        programs[core] = program
    system = System(
        config, programs, trace=True, preload_l2=True, preload_il1=True, arbiter=arbiter
    )
    result = system.run(observed_cores=[observed_core])
    return result, contention_histogram(result.trace, observed_core)


class TestArbiterPoliciesAtSystemLevel:
    def test_fifo_arbitration_bounds_contention_by_queue_depth(self, tiny_config):
        arbiter = FifoArbiter(tiny_config.num_cores + 1)
        _, histogram = run_rsk_under_arbiter(tiny_config, arbiter)
        # With Nc-1 contenders each holding at most one outstanding request,
        # FCFS delays a request by at most (Nc-1) services plus one in flight.
        assert histogram.max_observed <= tiny_config.ubd + tiny_config.bus_service_l2_hit

    def test_fixed_priority_highest_core_sees_least_contention(self, tiny_config):
        ports = tiny_config.num_cores + 1
        _, top = run_rsk_under_arbiter(tiny_config, FixedPriorityArbiter(ports), observed_core=0)
        # The highest-priority core waits at most for the transaction already
        # occupying the bus, never for a full round.
        assert top.max_observed <= tiny_config.bus_service_l2_hit
        assert top.max_observed < tiny_config.ubd

    def test_fixed_priority_lowest_core_starves_under_saturating_contenders(self, tiny_config):
        """The non-composability the paper's related work warns about: with a
        static-priority bus and saturating higher-priority traffic the lowest
        core has no delay bound at all — it simply starves."""
        ports = tiny_config.num_cores + 1
        observed = tiny_config.num_cores - 1
        programs = [build_rsk(tiny_config, core) for core in range(tiny_config.num_cores - 1)]
        programs.append(build_rsk(tiny_config, observed, iterations=5))
        system = System(
            tiny_config,
            programs,
            preload_l2=True,
            preload_il1=True,
            arbiter=FixedPriorityArbiter(ports),
        )
        result = system.run(observed_cores=[observed], max_cycles=20_000)
        assert result.timed_out, "the lowest-priority core should never finish"
        assert result.pmc.core[observed].bus_requests <= 1

    def test_tdma_waits_for_the_slot_even_on_an_idle_bus(self, tiny_config):
        slot = tiny_config.bus_service_l2_hit
        arbiter = TdmaArbiter(tiny_config.num_cores + 1, slot_cycles=slot)
        scua = build_rsk(tiny_config, 0, iterations=20)
        programs = [scua] + [None] * (tiny_config.num_cores - 1)
        system = System(
            tiny_config, programs, trace=True, preload_l2=True, preload_il1=True, arbiter=arbiter
        )
        result = system.run(observed_cores=[0])
        runner = ExperimentRunner(tiny_config)
        rr_isolation = runner.run_isolation(build_rsk(tiny_config, 0, iterations=20))
        # TDMA in isolation is slower than round robin in isolation because it
        # is not work conserving.
        assert result.execution_time(0) > rr_isolation.execution_time

    def test_tdma_execution_time_is_bounded_and_composable(self, tiny_config):
        slot = tiny_config.bus_service_l2_hit
        ports = tiny_config.num_cores + 1
        alone_time = None
        contended_time = None
        for contended in (False, True):
            scua = build_rsk(tiny_config, 0, iterations=20)
            programs = [scua] + (
                [build_rsk(tiny_config, core) for core in range(1, tiny_config.num_cores)]
                if contended
                else [None] * (tiny_config.num_cores - 1)
            )
            system = System(
                tiny_config,
                programs,
                preload_l2=True,
                preload_il1=True,
                arbiter=TdmaArbiter(ports, slot_cycles=slot),
            )
            time = system.run(observed_cores=[0]).execution_time(0)
            if contended:
                contended_time = time
            else:
                alone_time = time
        # Under TDMA the co-runners barely change the observed execution time:
        # the schedule is fixed regardless of their presence.
        assert contended_time <= alone_time * 1.05


class TestL2MissAndDramPathUnderContention:
    def test_l2_miss_requests_use_the_response_port(self):
        config = micro_config(num_cores=2)
        # A footprint larger than the core's L2 partition forces recurring misses.
        stride = config.l2.cache.same_set_stride
        body = tuple(Load(0x4000 + index * stride) for index in range(6))
        program = Program(name="l2miss", body=body, iterations=4)
        system = System(config, [program, None], trace=True, preload_il1=True)
        result = system.run(observed_cores=[0])
        kinds = result.trace.count_by_kind()
        assert kinds.get("response", 0) > 0
        assert result.pmc.dram_accesses > 0

    def test_dram_bound_task_still_finishes_under_contention(self):
        config = micro_config(num_cores=2)
        stride = config.l2.cache.same_set_stride
        body = tuple(Load(0x4000 + index * stride) for index in range(6))
        scua = Program(name="l2miss", body=body, iterations=4)
        contender = build_rsk(config, 1, iterations=None)
        system = System(config, [scua, contender], trace=True, preload_il1=True, preload_l2=True)
        result = system.run(observed_cores=[0])
        assert result.done_cycles[0] is not None
        # The contender keeps hitting in L2, the scua keeps missing: both kinds
        # of traffic share the bus without deadlock and the DRAM sees only the
        # scua's lines.
        assert result.pmc.dram_accesses >= 6

    def test_contention_slows_down_dram_bound_task_too(self):
        config = micro_config(num_cores=2)
        stride = config.l2.cache.same_set_stride
        body = tuple(Load(0x4000 + index * stride) for index in range(6))
        scua = Program(name="l2miss", body=body, iterations=4)

        def run(with_contender: bool) -> int:
            programs = [scua, build_rsk(config, 1) if with_contender else None]
            system = System(config, programs, preload_il1=True, preload_l2=True)
            return system.run(observed_cores=[0]).execution_time(0)

        assert run(True) > run(False)
