"""Unit tests for the analytical contention model (Equations 1 and 2, Figures 2-5)."""

from __future__ import annotations

import pytest

from repro.analysis.model import (
    ContentionModel,
    gamma_of_delta,
    predicted_slowdown_per_request,
    predicted_store_slowdown_per_request,
    sawtooth_curve,
    synchrony_timeline,
    ubd_analytical,
)
from repro.errors import AnalysisError


class TestEquation1:
    def test_reference_platform_value(self):
        assert ubd_analytical(4, 9) == 27

    def test_single_core_has_no_contention(self):
        assert ubd_analytical(1, 9) == 0

    @pytest.mark.parametrize("cores, lbus", [(2, 3), (4, 9), (8, 5), (3, 7)])
    def test_general_formula(self, cores, lbus):
        assert ubd_analytical(cores, lbus) == (cores - 1) * lbus

    def test_rejects_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            ubd_analytical(0, 9)
        with pytest.raises(AnalysisError):
            ubd_analytical(4, 0)


class TestEquation2:
    def test_zero_injection_time_suffers_full_ubd(self):
        assert gamma_of_delta(0, 27) == 27

    def test_figure3_values(self):
        """The table at the bottom of Figure 3 (ubd = 6)."""
        expected = {0: 6, 1: 5, 2: 4, 3: 3, 4: 2, 5: 1, 6: 0, 7: 5}
        for delta, gamma in expected.items():
            assert gamma_of_delta(delta, 6) == gamma

    def test_minimum_injection_time_never_reaches_ubd(self):
        """Section 3.2: with delta >= 1 the maximum observable value is ubd - 1."""
        values = [gamma_of_delta(delta, 27) for delta in range(1, 200)]
        assert max(values) == 26

    def test_periodicity(self):
        for delta in range(1, 100):
            assert gamma_of_delta(delta, 27) == gamma_of_delta(delta + 27, 27)

    def test_zero_at_multiples_of_ubd(self):
        for multiple in (1, 2, 3):
            assert gamma_of_delta(27 * multiple, 27) == 0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            gamma_of_delta(-1, 27)
        with pytest.raises(AnalysisError):
            gamma_of_delta(3, 0)

    def test_sawtooth_curve_matches_pointwise(self):
        deltas = list(range(0, 60))
        curve = sawtooth_curve(deltas, 27)
        assert curve == [gamma_of_delta(d, 27) for d in deltas]


class TestPredictedSlowdowns:
    def test_load_prediction_uses_shifted_delta(self):
        assert predicted_slowdown_per_request(k=0, ubd=27, delta_rsk=1) == 26
        assert predicted_slowdown_per_request(k=25, ubd=27, delta_rsk=1) == 1
        assert predicted_slowdown_per_request(k=26, ubd=27, delta_rsk=1) == 0
        assert predicted_slowdown_per_request(k=27, ubd=27, delta_rsk=1) == 26

    def test_load_prediction_periodic_in_k(self):
        for k in range(0, 60):
            assert predicted_slowdown_per_request(k, 27, 1) == predicted_slowdown_per_request(
                k + 27, 27, 1
            )

    def test_store_prediction_decreases_then_vanishes(self):
        values = [
            predicted_store_slowdown_per_request(k, ubd=27, lbus=9, delta_rsk=1)
            for k in range(0, 50)
        ]
        assert values[0] == 27
        assert values[-1] == 0
        assert all(a >= b for a, b in zip(values, values[1:])), "must be non-increasing"

    def test_store_prediction_zero_beyond_contended_drain_interval(self):
        value = predicted_store_slowdown_per_request(k=40, ubd=27, lbus=9, delta_rsk=1)
        assert value == 0

    def test_rejects_negative_k(self):
        with pytest.raises(AnalysisError):
            predicted_slowdown_per_request(-1, 27, 1)


class TestContentionModel:
    def test_reference_model_quantities(self):
        model = ContentionModel(num_cores=4, lbus=9, delta_rsk=1)
        assert model.ubd == 27
        assert model.gamma(0) == 27
        assert model.gamma_for_k(0) == 26
        assert model.maximum_observable_gamma() == 26

    def test_variant_model_maximum_observable(self):
        """The var platform (delta_rsk = 4) observes at most 23 (Figure 6(b))."""
        model = ContentionModel(num_cores=4, lbus=9, delta_rsk=4)
        assert model.maximum_observable_gamma() == 23

    def test_zero_delta_rsk_observes_ubd(self):
        model = ContentionModel(num_cores=4, lbus=9, delta_rsk=0)
        assert model.maximum_observable_gamma() == 27

    def test_dbus_curve_scales_with_requests(self):
        model = ContentionModel(num_cores=4, lbus=9, delta_rsk=1)
        curve = model.dbus_curve([0, 1, 2], requests=100)
        assert curve == [2600, 2500, 2400]

    def test_dbus_curve_period_is_ubd(self):
        model = ContentionModel(num_cores=2, lbus=3, delta_rsk=1)
        ks = list(range(0, 12))
        curve = model.dbus_curve(ks, requests=10)
        assert curve[:3] == curve[3:6] == curve[6:9]

    def test_store_curve_requires_requests(self):
        model = ContentionModel(num_cores=4, lbus=9)
        with pytest.raises(AnalysisError):
            model.store_dbus_curve([1, 2], requests=0)


class TestSynchronyTimeline:
    @pytest.mark.parametrize("delta", [0, 1, 3, 6, 7, 9, 13, 20, 27, 28, 54, 61])
    def test_timeline_contention_matches_equation2(self, delta):
        """Figures 2/3/5: the schedule-based derivation agrees with Equation 2."""
        timeline = synchrony_timeline(num_cores=4, lbus=9, delta=delta, rounds=6)
        assert timeline["contention"] == gamma_of_delta(delta, 27)

    @pytest.mark.parametrize("cores, lbus", [(2, 3), (3, 4), (4, 9), (6, 2)])
    def test_timeline_matches_equation2_across_platforms(self, cores, lbus):
        ubd = ubd_analytical(cores, lbus)
        for delta in range(0, 3 * ubd + 2):
            timeline = synchrony_timeline(cores, lbus, delta, rounds=8)
            assert timeline["contention"] == gamma_of_delta(delta, ubd)

    def test_timeline_with_short_slots(self):
        """With 3-cycle slots (as drawn in Figure 2) a request ready exactly when
        the round-robin pointer returns is served with zero contention."""
        timeline = synchrony_timeline(num_cores=4, lbus=3, delta=9)
        assert timeline["ubd"] == 9
        assert timeline["contention"] == 0

    def test_timeline_intervals_are_contiguous(self):
        timeline = synchrony_timeline(num_cores=4, lbus=9, delta=5, rounds=3)
        intervals = timeline["intervals"]
        for (_, _, end), (_, start, _) in zip(intervals, intervals[1:]):
            assert start == end

    def test_timeline_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            synchrony_timeline(4, 9, delta=-1)
        with pytest.raises(AnalysisError):
            synchrony_timeline(4, 9, delta=0, observed_core=7)
