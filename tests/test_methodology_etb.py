"""Unit tests for the ETB padding (how STA/MBTA consume ubdm)."""

from __future__ import annotations

import pytest

from repro.errors import MethodologyError
from repro.kernels.rsk import build_rsk
from repro.methodology.etb import EtbReport, build_etb_report, compute_etb, mbta_padding
from repro.methodology.experiment import ExperimentRunner


class TestPadding:
    def test_pad_is_requests_times_ubdm(self):
        assert mbta_padding(100, 27) == 2700

    def test_fractional_ubdm_rounded_up(self):
        assert mbta_padding(3, 26.5) == 80

    def test_zero_requests(self):
        assert mbta_padding(0, 27) == 0

    def test_negative_inputs_rejected(self):
        with pytest.raises(MethodologyError):
            mbta_padding(-1, 27)
        with pytest.raises(MethodologyError):
            mbta_padding(1, -2.0)

    def test_compute_etb_adds_pad_to_isolation(self):
        assert compute_etb(1000, 10, 27) == 1270

    def test_compute_etb_rejects_negative_isolation(self):
        with pytest.raises(MethodologyError):
            compute_etb(-1, 10, 27)


class TestEtbReport:
    def test_report_fields(self):
        report = build_etb_report("task", isolation_time=500, requests=50, ubdm=27)
        assert report.etb == 500 + 50 * 27
        assert report.pad == 50 * 27
        assert report.covers_observation is None
        assert report.margin is None

    def test_report_with_observation_covered(self):
        report = build_etb_report(
            "task", isolation_time=500, requests=50, ubdm=27, observed_contended_time=1500
        )
        assert report.covers_observation
        assert report.margin == report.etb - 1500
        assert "covers" in report.summary()

    def test_report_with_observation_violated(self):
        report = build_etb_report(
            "task", isolation_time=500, requests=10, ubdm=1, observed_contended_time=9000
        )
        assert report.covers_observation is False
        assert report.margin < 0
        assert "VIOLATED" in report.summary()

    def test_summary_without_observation(self):
        report = build_etb_report("task", isolation_time=10, requests=2, ubdm=3)
        assert "ETB" in report.summary()


class TestEtbSoundnessOnSimulator:
    def test_etb_with_true_ubd_covers_observed_contention(self, tiny_config):
        """Padding with the real ubd always covers the contended run."""
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=25)
        isolation = runner.run_isolation(scua)
        contended = runner.run_against_rsk(scua)
        report = build_etb_report(
            scua.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=tiny_config.ubd,
            observed_contended_time=contended.execution_time,
        )
        assert report.covers_observation

    def test_etb_with_underestimated_bound_may_not_cover_worst_case(self, tiny_config):
        """Padding with a too-small per-request bound gives a smaller ETB than
        padding with ubd — the trustworthiness gap the paper worries about."""
        runner = ExperimentRunner(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=25)
        isolation = runner.run_isolation(scua)
        under = build_etb_report(
            scua.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=1.0,
        )
        sound = build_etb_report(
            scua.name,
            isolation_time=isolation.execution_time,
            requests=isolation.bus_requests,
            ubdm=float(tiny_config.ubd),
        )
        assert under.etb < sound.etb
