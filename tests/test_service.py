"""Tests for campaign-as-a-service (protocol, daemon, workers, clients).

The end-to-end tests run a real :class:`CampaignDaemon` in a thread on a
private Unix socket (TCP where the multi-host transport itself is under
test) and talk to it through the public client/worker classes — the same
code paths ``repro-bounds serve/submit/worker`` drive.
"""

from __future__ import annotations

import contextlib
import io
import json
import shutil
import socket
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    CampaignStreamWriter,
    ParallelRunner,
    ResultStore,
    campaign_digest,
    compact_shard,
    load_manifest,
)
from repro.campaign.runner import ShardTask
from repro.errors import MethodologyError, ServiceError
from repro.service import (
    JOB_STATES,
    PROTOCOL_VERSION,
    CampaignDaemon,
    RemoteWorker,
    ServiceAddress,
    ServiceClient,
    ShardBoard,
    parse_address,
    shard_from_payload,
    shard_to_payload,
)
from repro.service.protocol import make_frame, recv_frame, request, send_frame

#: Small enough for unit tests, covers both run kinds (workload + rsk).
TINY_SPEC = CampaignSpec(
    presets=("small",),
    num_workloads=2,
    iterations=4,
    rsk_iterations=20,
)

#: Strict superset of TINY_SPEC's grid: one extra seed.  Its miss-frontier
#: against a store that already ran TINY_SPEC is exactly the new seed's runs.
OVERLAP_SPEC = CampaignSpec(
    presets=("small",),
    seeds=(2015, 2016),
    num_workloads=2,
    iterations=4,
    rsk_iterations=20,
)


@contextlib.contextmanager
def serving(base: Path, jobs: int = 1, address=None, **kwargs):
    """A daemon thread on a private socket; drains on exit.

    Unix socket paths live in a short mkdtemp directory — pytest tmp
    paths can exceed the AF_UNIX path length limit.
    """
    sock_dir = tempfile.mkdtemp(prefix="rs-")
    if address is None:
        address = ServiceAddress(kind="unix", path=f"{sock_dir}/s.sock")
    daemon = CampaignDaemon(
        store_dir=base / "store",
        data_dir=base / "data",
        jobs=jobs,
        log=io.StringIO(),
        **kwargs,
    )
    thread = threading.Thread(target=daemon.serve, args=(address,), daemon=True)
    thread.start()
    client = ServiceClient(address)
    client.wait_for_daemon()
    try:
        yield daemon, client, address
    finally:
        if thread.is_alive():
            with contextlib.suppress(ServiceError):
                client.shutdown()
            thread.join(timeout=60)
        shutil.rmtree(sock_dir, ignore_errors=True)
        assert not thread.is_alive(), "daemon failed to drain"


def _submit_and_wait(client: ServiceClient, spec: CampaignSpec) -> dict:
    submitted = client.submit(spec)
    return client.wait(str(submitted["job_id"]), timeout=120, interval=0.02)


# --------------------------------------------------------------------------- #
# Addresses
# --------------------------------------------------------------------------- #


class TestParseAddress:
    def test_unix_prefix(self):
        address = parse_address("unix:/tmp/x.sock")
        assert (address.kind, address.path) == ("unix", "/tmp/x.sock")
        assert str(address) == "unix:/tmp/x.sock"

    def test_bare_path_is_unix(self):
        assert parse_address("out/daemon.sock") == ServiceAddress(
            kind="unix", path="out/daemon.sock"
        )

    def test_tcp(self):
        address = parse_address("tcp:127.0.0.1:9911")
        assert (address.kind, address.host, address.port) == ("tcp", "127.0.0.1", 9911)
        assert str(address) == "tcp:127.0.0.1:9911"

    @pytest.mark.parametrize(
        "text",
        ["", "unix:", "tcp:9911", "tcp::9911", "tcp:host:notaport", "tcp:host:70000"],
    )
    def test_malformed_addresses_rejected(self, text):
        with pytest.raises(ServiceError):
            parse_address(text)

    def test_stale_unix_socket_file_is_replaced(self, tmp_path):
        # A dead daemon leaves its bound socket file behind; binding again
        # must succeed (nothing is listening on the stale file).
        sock_dir = tempfile.mkdtemp(prefix="rs-")
        try:
            address = ServiceAddress(kind="unix", path=f"{sock_dir}/stale.sock")
            address.create_listener().close()  # leaves the file behind
            listener = address.create_listener()
            listener.close()
        finally:
            shutil.rmtree(sock_dir, ignore_errors=True)

    def test_live_daemon_address_is_not_stolen(self, tmp_path):
        with serving(tmp_path) as (_, __, address):
            with pytest.raises(ServiceError, match="live daemon"):
                address.create_listener()


# --------------------------------------------------------------------------- #
# Frames and shard payloads
# --------------------------------------------------------------------------- #


class TestProtocolFrames:
    def test_make_frame_stamps_version(self):
        frame = make_frame("ping", extra=1)
        assert frame["v"] == PROTOCOL_VERSION
        assert frame["type"] == "ping"
        assert frame["extra"] == 1

    @contextlib.contextmanager
    def _pair(self):
        left, right = socket.socketpair()
        reader = right.makefile("rb")
        try:
            yield left, reader
        finally:
            reader.close()
            with contextlib.suppress(OSError):
                left.close()
            right.close()

    def test_frame_round_trip(self):
        with self._pair() as (left, reader):
            send_frame(left, make_frame("status", job_id="job-0001"))
            frame = recv_frame(reader)
            assert frame == {"v": PROTOCOL_VERSION, "type": "status", "job_id": "job-0001"}

    def test_eof_is_none(self):
        with self._pair() as (left, reader):
            left.close()
            assert recv_frame(reader) is None

    def test_malformed_json_rejected(self):
        with self._pair() as (left, reader):
            left.sendall(b"{not json}\n")
            with pytest.raises(ServiceError, match="malformed"):
                recv_frame(reader)

    def test_non_object_frame_rejected(self):
        with self._pair() as (left, reader):
            left.sendall(b"[1, 2]\n")
            with pytest.raises(ServiceError, match="JSON object"):
                recv_frame(reader)

    def test_version_mismatch_rejected(self):
        with self._pair() as (left, reader):
            left.sendall(b'{"v": 99, "type": "ping"}\n')
            with pytest.raises(ServiceError, match="version mismatch"):
                recv_frame(reader)

    def test_shard_payload_round_trip(self):
        descriptors = TINY_SPEC.expand()
        pending = [(d.digest(), d) for d in descriptors]
        shard = compact_shard(3, pending)
        # Through real JSON, exactly as the wire carries it.
        rebuilt = shard_from_payload(json.loads(json.dumps(shard_to_payload(shard))))
        assert rebuilt == shard

    def test_shard_payload_dedupes_configs(self):
        descriptors = TINY_SPEC.expand()
        payload = shard_to_payload(compact_shard(0, [(d.digest(), d) for d in descriptors]))
        assert len(payload["configs"]) == 1  # one preset -> one config object
        assert len(payload["runs"]) == len(descriptors)

    def test_malformed_shard_payload_rejected(self):
        with pytest.raises(ServiceError, match="malformed shard payload"):
            shard_from_payload({"index": 0, "configs": [], "runs": [{"run_id": "x"}]})


class TestSpecRoundTrip:
    def test_to_dict_from_dict(self):
        for spec in (TINY_SPEC, OVERLAP_SPEC):
            assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_survives_json(self):
        rebuilt = CampaignSpec.from_dict(json.loads(json.dumps(OVERLAP_SPEC.to_dict())))
        assert rebuilt.expand() == OVERLAP_SPEC.expand()

    def test_unknown_fields_rejected(self):
        payload = TINY_SPEC.to_dict()
        payload["shard_count"] = 4
        with pytest.raises(MethodologyError, match="unknown campaign spec"):
            CampaignSpec.from_dict(payload)


# --------------------------------------------------------------------------- #
# ShardBoard (dispatch, leases, requeue) — no sockets involved.
# --------------------------------------------------------------------------- #


def _shards(count: int):
    return [ShardTask(index=i, configs=(), runs=()) for i in range(count)]


class TestShardBoard:
    def test_local_take_complete_drain(self):
        board = ShardBoard("job-x", _shards(2), lease_seconds=60.0)
        first = board.take_local()
        second = board.take_local()
        assert {first.index, second.index} == {0, 1}
        assert board.complete(first.index, [("d0", {"r": 0})])
        assert board.complete(second.index, [("d1", {"r": 1})])
        assert board.take_local() is None  # finished
        assert board.wait_result(0, timeout=0.1) is not None

    def test_complete_is_first_wins(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        board.take_remote("worker:a")
        assert board.complete(0, [("d", {"r": 1})])
        assert not board.complete(0, [("d", {"r": 2})])  # late duplicate dropped
        assert board.wait_result(0, timeout=0.1) == [("d", {"r": 1})]

    def test_unknown_shard_index_rejected(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        assert not board.complete(99, [])

    def test_release_owner_requeues(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        assert board.take_remote("worker:a").index == 0
        assert board.take_remote("worker:b") is None  # leased out
        assert board.release_owner("worker:a") == 1
        assert board.take_remote("worker:b").index == 0  # requeued

    def test_expired_lease_requeues(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=0.05)
        board.take_remote("worker:a")
        deadline = time.monotonic() + 5.0
        while not board.expire_stale():
            assert time.monotonic() < deadline, "lease never expired"
        assert board.take_remote("worker:b").index == 0

    def test_heartbeat_extends_the_lease(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=1.0)
        board.take_remote("worker:a")
        # Without the heartbeats below the lease would expire at +1.0s;
        # two refreshes carry it to roughly +1.8s.
        for _ in range(2):
            time.sleep(0.4)
            board.heartbeat(0, "worker:a")
            assert board.expire_stale() == []

    def test_stale_heartbeat_ignored(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        board.take_remote("worker:a")
        board.heartbeat(0, "worker:b")  # not the lease holder: no-op
        assert board.release_owner("worker:a") == 1

    def test_fail_unblocks_takers(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        board.take_remote("worker:a")
        board.fail("pool exploded")
        assert board.take_local() is None
        assert board.error == "pool exploded"

    def test_requeued_then_completed_shard_leaves_pending(self):
        board = ShardBoard("job-x", _shards(1), lease_seconds=60.0)
        board.take_remote("worker:a")
        board.release_owner("worker:a")  # back on the queue
        assert board.complete(0, [("d", {"r": 1})])  # slow worker finished anyway
        assert board.take_remote("worker:b") is None  # not handed out again


# --------------------------------------------------------------------------- #
# End to end: daemon + clients (+ workers) over real sockets.
# --------------------------------------------------------------------------- #


class TestServiceEndToEnd:
    def test_ping_reports_pid_and_draining(self, tmp_path):
        with serving(tmp_path) as (_, client, __):
            pong = client.ping()
            assert pong["type"] == "pong"
            assert pong["draining"] is False

    def test_artifacts_byte_identical_to_one_shot(self, tmp_path):
        descriptors = TINY_SPEC.expand()
        digests = [d.digest() for d in descriptors]
        oneshot = tmp_path / "oneshot"
        with ResultStore(tmp_path / "oneshot-store", campaign_id=campaign_digest(digests)) as store:
            stream = CampaignStreamWriter(oneshot)
            outcome = ParallelRunner(jobs=1, cache=store).run(descriptors, stream=stream)
            stream.finalize(outcome.summary())

        with serving(tmp_path) as (_, client, __):
            job = _submit_and_wait(client, TINY_SPEC)
            served = Path(str(job["out_dir"]))

        assert (served / "results.jsonl").read_bytes() == (oneshot / "results.jsonl").read_bytes()
        assert (served / "campaign.json").read_bytes() == (oneshot / "campaign.json").read_bytes()
        served_summary = json.loads((served / "summary.json").read_text())
        oneshot_summary = json.loads((oneshot / "summary.json").read_text())
        served_summary.pop("timing"), oneshot_summary.pop("timing")
        assert served_summary == oneshot_summary
        # The finalized manifest carries no owner stamp (that would break
        # byte-identity with one-shot runs; the owner only marks in-flight).
        assert "owner" not in load_manifest(served)

    def test_overlapping_specs_simulate_exactly_the_union(self, tmp_path):
        with serving(tmp_path) as (_, client, __):
            first = _submit_and_wait(client, TINY_SPEC)
            second = _submit_and_wait(client, OVERLAP_SPEC)
            third = _submit_and_wait(client, OVERLAP_SPEC)

        tiny_unique = first["stats"]["unique_runs"]
        overlap_unique = second["stats"]["unique_runs"]
        assert first["stats"]["simulated"] == tiny_unique
        # Second spec strictly contains the first: it only simulates the
        # new seed's slice of its frontier, the rest comes from the store.
        assert second["stats"]["simulated"] == overlap_unique - tiny_unique
        assert second["stats"]["cached"] == tiny_unique
        # Identical resubmission is a pure store read.
        assert third["stats"]["simulated"] == 0
        assert third["stats"]["cached"] == overlap_unique
        # The store's cumulative counters agree: the warm job wrote no new
        # artifacts (the snapshot did not advance past the second job's).
        assert (
            third["stats"]["store"]["artifact_writes"]
            == second["stats"]["store"]["artifact_writes"]
        )

    def test_concurrent_identical_submissions_simulate_once(self, tmp_path):
        with serving(tmp_path) as (_, client, address):
            jobs = [None] * 3
            errors = []

            def _one(slot):
                try:
                    jobs[slot] = _submit_and_wait(ServiceClient(address), TINY_SPEC)
                except BaseException as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=_one, args=(i,)) for i in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            simulated = sorted(job["stats"]["simulated"] for job in jobs)
            unique = jobs[0]["stats"]["unique_runs"]
            # FIFO scheduling: exactly one job paid the frontier, the other
            # two resolved entirely from the store it populated.
            assert simulated == [0, 0, unique]

    def test_results_frame_matches_artifacts(self, tmp_path):
        with serving(tmp_path) as (_, client, __):
            job = _submit_and_wait(client, TINY_SPEC)
            results = client.results(str(job["job_id"]))
            records = [
                json.loads(line)
                for line in Path(str(job["out_dir"]))
                .joinpath("results.jsonl")
                .read_text()
                .splitlines()
            ]
            assert results["records"] == records
            assert results["job"]["state"] == "completed"

    def test_status_table_and_unknown_job(self, tmp_path):
        with serving(tmp_path) as (_, client, __):
            job = _submit_and_wait(client, TINY_SPEC)
            table = client.status()
            assert [entry["job_id"] for entry in table["jobs"]] == [job["job_id"]]
            assert table["workers"] == 0
            assert all(entry["state"] in JOB_STATES for entry in table["jobs"])
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("job-9999-deadbeef")
            with pytest.raises(ServiceError, match="not ready|unknown"):
                client.results("job-9999-deadbeef")

    def test_submissions_rejected_while_draining(self, tmp_path):
        with serving(tmp_path) as (daemon, client, __):
            submitted = client.submit(TINY_SPEC)
            client.shutdown()
            with pytest.raises(ServiceError, match="draining"):
                client.submit(TINY_SPEC)
            # The already-queued job still completes before the drain.  The
            # daemon may finish draining (and remove its socket) between
            # status polls, so assert on the job table, not over the wire.
            job = daemon.get_job(str(submitted["job_id"]))
            assert job.done.wait(timeout=120)
            assert job.state == "completed"

    def test_malformed_submit_is_an_error_frame(self, tmp_path):
        with serving(tmp_path) as (_, __, address):
            conn = address.connect(timeout=5)
            try:
                with pytest.raises(ServiceError, match="unknown campaign spec"):
                    request(conn, make_frame("submit", spec={"bogus_field": 1}))
            finally:
                conn.close()

    def test_unknown_frame_type_is_an_error_frame(self, tmp_path):
        with serving(tmp_path) as (_, __, address):
            conn = address.connect(timeout=5)
            try:
                with pytest.raises(ServiceError, match="unknown frame type"):
                    request(conn, make_frame("frobnicate"))
            finally:
                conn.close()

    def test_failed_job_reports_error(self, tmp_path):
        bad = CampaignSpec(presets=("no-such-preset",), num_workloads=1)
        with serving(tmp_path) as (_, client, __):
            # Expansion happens at submit time: the submitting client gets
            # the error, nothing reaches the scheduler.
            with pytest.raises(ServiceError):
                client.submit(bad)


class TestRemoteWorkers:
    def test_remote_only_execution(self, tmp_path):
        """jobs=0: every shard flows to the remote worker; the daemon only
        absorbs, and the artifacts still match a local one-shot run."""
        with serving(tmp_path, jobs=0) as (_, client, address):
            worker = RemoteWorker(address, worker_id="w1", poll_interval=0.02)
            done = []
            runner = threading.Thread(target=lambda: done.append(worker.run()))
            runner.start()
            job = _submit_and_wait(client, TINY_SPEC)
            assert job["stats"]["simulated"] == job["stats"]["unique_runs"]
            client.shutdown()
            runner.join(timeout=60)
            assert not runner.is_alive()
            assert done and done[0] >= 1  # the worker executed the shards

    def test_tcp_transport(self, tmp_path):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        address = ServiceAddress(kind="tcp", host="127.0.0.1", port=port)
        with serving(tmp_path, jobs=0, address=address) as (_, client, __):
            worker = RemoteWorker(address, worker_id="tcp-w", poll_interval=0.02)
            runner = threading.Thread(target=worker.run)
            runner.start()
            job = _submit_and_wait(client, TINY_SPEC)
            assert job["state"] == "completed"
            client.shutdown()
            runner.join(timeout=60)
            assert not runner.is_alive()

    def _take_one_shard(self, address):
        """Hand-rolled worker: hello, poll until a task is leased, return
        the open connection plus the task frame without completing it."""
        conn = address.connect(timeout=5)
        reader = conn.makefile("rb")
        send_frame(conn, make_frame("worker-hello", worker_id="doomed"))
        assert recv_frame(reader)["type"] == "ok"
        deadline = time.monotonic() + 60
        while True:
            send_frame(conn, make_frame("task-request"))
            response = recv_frame(reader)
            if response["type"] == "task":
                return conn, reader, response
            assert response["type"] == "idle"
            assert time.monotonic() < deadline, "no shard offered"
            time.sleep(0.02)

    def test_dead_worker_shard_is_requeued_and_job_completes(self, tmp_path):
        """A worker that takes a shard and drops dead (connection lost,
        nothing completed) must not lose the shard: it requeues and a
        healthy worker finishes the job."""
        with serving(tmp_path, jobs=0) as (_, client, address):
            submitted = client.submit(TINY_SPEC)
            conn, reader, _task = self._take_one_shard(address)
            reader.close()
            conn.close()  # dies holding the lease -> release_owner requeues

            rescuer = RemoteWorker(address, worker_id="rescuer", poll_interval=0.02)
            runner = threading.Thread(target=rescuer.run)
            runner.start()
            job = client.wait(str(submitted["job_id"]), timeout=120, interval=0.02)
            assert job["state"] == "completed"
            assert job["stats"]["simulated"] == job["stats"]["unique_runs"]
            client.shutdown()
            runner.join(timeout=60)
            assert not runner.is_alive()

    def test_silent_worker_lease_expires_and_late_result_is_dropped(self, tmp_path):
        """A worker that stalls without heartbeating loses its lease after
        ``shard_timeout``; its eventual result is acknowledged but dropped
        (accepted: false) because the shard was completed by someone else."""
        with serving(tmp_path, jobs=0, shard_timeout=0.2) as (_, client, address):
            submitted = client.submit(TINY_SPEC)
            conn, reader, task = self._take_one_shard(address)
            try:
                rescuer = RemoteWorker(address, worker_id="rescuer", poll_interval=0.02)
                runner = threading.Thread(target=rescuer.run)
                runner.start()
                job = client.wait(str(submitted["job_id"]), timeout=120, interval=0.02)
                assert job["state"] == "completed"

                # The stalled worker finally reports its shard.
                send_frame(
                    conn,
                    make_frame(
                        "task-result",
                        job_id=task["job_id"],
                        shard_index=task["shard"]["index"],
                        results=[],
                    ),
                )
                response = recv_frame(reader)
                assert response["type"] == "ok"
                assert response["accepted"] is False
            finally:
                reader.close()
                conn.close()
            client.shutdown()
            runner.join(timeout=60)
            assert not runner.is_alive()

    def test_worker_survives_daemon_exit(self, tmp_path):
        """A worker polling a daemon that drains away exits cleanly (rc 0
        semantics: ConnectionLost is a normal end of service)."""
        with serving(tmp_path, jobs=0) as (_, client, address):
            worker = RemoteWorker(address, worker_id="idler", poll_interval=0.02)
            runner = threading.Thread(target=worker.run)
            runner.start()
            client.shutdown()
            runner.join(timeout=60)
            assert not runner.is_alive()


# --------------------------------------------------------------------------- #
# Crash artifacts: the resumable in-flight manifest.
# --------------------------------------------------------------------------- #


class TestCrashArtifacts:
    def test_owned_in_flight_manifest_audits_as_resumable_warn(self, tmp_path):
        from repro.audit import audit_campaign_dir

        descriptors = TINY_SPEC.expand()
        records = ParallelRunner(jobs=1).run(descriptors).records
        stream = CampaignStreamWriter(
            tmp_path / "crashed", checkpoint_interval=0.0, owner="serve:12345"
        )
        stream.begin(campaign_digest([d.digest() for d in descriptors]), len(descriptors))
        stream.append(records[:2])
        stream.checkpoint()
        stream.abandon()  # the daemon died here: completed stays false

        manifest = load_manifest(stream.directory)
        assert manifest["completed"] is False
        assert manifest["owner"] == "serve:12345"

        report = audit_campaign_dir(stream.directory)
        assert report.verdict == "warn"  # resumable, not corrupt
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        finding = by_check["manifest_completed"]
        assert finding.verdict == "warn"
        assert "serve:12345" in finding.detail
        assert "resumable" in finding.detail


# --------------------------------------------------------------------------- #
# CLI surface (submit/status/results/worker against an in-thread daemon).
# --------------------------------------------------------------------------- #


class TestServiceCli:
    def test_submit_wait_status_results_shutdown(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC.to_dict()))
        with serving(tmp_path) as (_, client, address):
            assert main(["submit", str(spec_path), "--socket", str(address), "--wait"]) == 0
            out = capsys.readouterr().out
            assert "completed" in out and "simulated" in out

            assert main(["status", "--socket", str(address)]) == 0
            table = capsys.readouterr().out
            assert "job-0001" in table

            job_id = client.status()["jobs"][0]["job_id"]
            assert main(["results", job_id, "--socket", str(address), "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["job"]["state"] == "completed"

            assert main(["shutdown", "--socket", str(address)]) == 0
            assert "drain" in capsys.readouterr().out.lower()

    def test_submit_to_dead_socket_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC.to_dict()))
        assert main(["submit", str(spec_path), "--socket", str(tmp_path / "gone.sock")]) == 2
        assert "cannot connect" in capsys.readouterr().err.lower()

    def test_worker_cli_drains_with_daemon(self, tmp_path, capsys):
        from repro.cli import main

        with serving(tmp_path, jobs=0) as (_, client, address):
            submitted = client.submit(TINY_SPEC)

            def _finisher():
                client.wait(str(submitted["job_id"]), timeout=120, interval=0.02)
                client.shutdown()

            finisher = threading.Thread(target=_finisher)
            finisher.start()
            assert main(["worker", "--connect", str(address), "--quiet"]) == 0
            finisher.join(timeout=60)
        assert "Completed" in capsys.readouterr().out

    def test_bad_spec_file_is_a_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with serving(tmp_path) as (_, __, address):
            assert main(["submit", str(bad), "--socket", str(address)]) == 2
        assert "spec" in capsys.readouterr().err.lower()
