"""Unit tests for the synthetic EEMBC-Autobench substitute suite."""

from __future__ import annotations

import pytest

from repro.config import reference_config
from repro.errors import ProgramError
from repro.kernels.synthetic import (
    SYNTHETIC_KERNELS,
    SyntheticKernelSpec,
    build_synthetic_kernel,
    synthetic_kernel_names,
)
from repro.kernels.layout import core_address_space
from repro.sim.isa import Load, Store
from repro.sim.system import System


@pytest.fixture(scope="module")
def ref():
    return reference_config()


class TestSuiteDefinition:
    def test_suite_has_at_least_ten_kernels(self):
        assert len(SYNTHETIC_KERNELS) >= 10

    def test_names_are_sorted_and_stable(self):
        names = synthetic_kernel_names()
        assert list(names) == sorted(names)
        assert set(names) == set(SYNTHETIC_KERNELS)

    def test_every_spec_is_consistent(self):
        for spec in SYNTHETIC_KERNELS.values():
            assert 0 <= spec.load_fraction + spec.store_fraction <= 1
            assert spec.body_length >= 4
            assert spec.working_set_bytes >= 64

    def test_suite_spans_cache_resident_and_bus_heavy(self, ref):
        working_sets = [spec.working_set_bytes for spec in SYNTHETIC_KERNELS.values()]
        assert min(working_sets) < ref.dl1.size_bytes
        assert max(working_sets) > ref.dl1.size_bytes

    def test_spec_validation_rejects_bad_fractions(self):
        with pytest.raises(ProgramError):
            SyntheticKernelSpec(
                name="bad",
                description="",
                body_length=32,
                working_set_bytes=1024,
                load_fraction=0.8,
                store_fraction=0.5,
                pattern="random",
            )

    def test_spec_validation_rejects_unknown_pattern(self):
        with pytest.raises(ProgramError):
            SyntheticKernelSpec(
                name="bad",
                description="",
                body_length=32,
                working_set_bytes=1024,
                load_fraction=0.1,
                store_fraction=0.1,
                pattern="zigzag",
            )


class TestKernelConstruction:
    def test_unknown_name_rejected(self, ref):
        with pytest.raises(ProgramError):
            build_synthetic_kernel(ref, "quake3", 0)

    def test_deterministic_for_same_seed(self, ref):
        a = build_synthetic_kernel(ref, "a2time", 0, seed=7)
        b = build_synthetic_kernel(ref, "a2time", 0, seed=7)
        assert a.body == b.body

    def test_different_seed_changes_random_kernels(self, ref):
        a = build_synthetic_kernel(ref, "tblook", 0, seed=1)
        b = build_synthetic_kernel(ref, "tblook", 0, seed=2)
        assert a.body != b.body

    def test_body_length_matches_spec(self, ref):
        for name in synthetic_kernel_names():
            program = build_synthetic_kernel(ref, name, 0)
            assert program.body_length == SYNTHETIC_KERNELS[name].body_length

    def test_memory_mix_close_to_spec(self, ref):
        for name in synthetic_kernel_names():
            spec = SYNTHETIC_KERNELS[name]
            program = build_synthetic_kernel(ref, name, 0)
            loads = sum(1 for instr in program.body if isinstance(instr, Load))
            stores = sum(1 for instr in program.body if isinstance(instr, Store))
            assert loads == round(spec.body_length * spec.load_fraction)
            assert stores == round(spec.body_length * spec.store_fraction)

    def test_addresses_stay_in_core_region(self, ref):
        space = core_address_space(2)
        program = build_synthetic_kernel(ref, "matrix", 2)
        for instr in program.body:
            if isinstance(instr, (Load, Store)):
                assert space.data_base <= instr.addr < space.data_limit

    def test_iterations_override(self, ref):
        program = build_synthetic_kernel(ref, "a2time", 0, iterations=3)
        assert program.iterations == 3

    def test_default_iterations_from_spec(self, ref):
        program = build_synthetic_kernel(ref, "a2time", 0)
        assert program.iterations == SYNTHETIC_KERNELS["a2time"].default_iterations


class TestKernelBehaviour:
    def test_cache_resident_kernel_produces_little_bus_traffic(self, ref):
        program = build_synthetic_kernel(ref, "basefp", 0, iterations=10)
        system = System(ref, [program], preload_il1=True, preload_l2=True, preload_dl1=True)
        result = system.run()
        requests_per_instruction = result.pmc.core[0].bus_requests / result.instructions[0]
        assert requests_per_instruction < 0.05

    def test_bus_heavy_kernel_produces_more_traffic_than_light_one(self, ref):
        def traffic(name: str) -> float:
            program = build_synthetic_kernel(ref, name, 0, iterations=10)
            system = System(ref, [program], preload_il1=True, preload_l2=True, preload_dl1=True)
            result = system.run()
            return result.pmc.core[0].bus_requests / result.instructions[0]

        assert traffic("cacheb") > traffic("basefp")

    def test_kernel_runs_to_completion_on_reference_platform(self, ref):
        program = build_synthetic_kernel(ref, "canrdr", 0, iterations=5)
        system = System(ref, [program], preload_il1=True, preload_l2=True)
        result = system.run()
        assert result.done_cycles[0] is not None
