"""Unit tests for the set-associative cache and its way-partitioned variant."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig
from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import SetAssociativeCache, WayPartitionedCache


def small_cache(ways: int = 2, sets: int = 4, line: int = 32, **kwargs) -> SetAssociativeCache:
    config = CacheConfig(size_bytes=ways * sets * line, ways=ways, line_size=line, **kwargs)
    return SetAssociativeCache(config, name="test")


class TestAddressHelpers:
    def test_line_address_masks_offset(self):
        cache = small_cache()
        assert cache.line_address(0x105) == 0x100

    def test_set_index_wraps(self):
        cache = small_cache(ways=2, sets=4, line=32)
        assert cache.set_index(0x00) == 0
        assert cache.set_index(0x20) == 1
        assert cache.set_index(0x80) == 0

    def test_same_set_stride_addresses_collide(self):
        cache = small_cache(ways=2, sets=4, line=32)
        stride = cache.config.same_set_stride
        indices = {cache.set_index(base) for base in range(0, 4 * stride, stride)}
        assert indices == {0}

    def test_tags_differ_for_same_set_addresses(self):
        cache = small_cache(ways=2, sets=4, line=32)
        stride = cache.config.same_set_stride
        assert cache.tag(0) != cache.tag(stride)


class TestLookupAndFill:
    def test_miss_then_fill_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(0x100)
        cache.fill(0x100)
        assert cache.lookup(0x100)

    def test_lookup_does_not_allocate(self):
        cache = small_cache()
        cache.lookup(0x100)
        assert not cache.contains(0x100)

    def test_contains_has_no_side_effects_on_stats(self):
        cache = small_cache()
        cache.fill(0x100)
        before = cache.stats.accesses
        cache.contains(0x100)
        assert cache.stats.accesses == before

    def test_fill_same_line_twice_does_not_evict(self):
        cache = small_cache()
        cache.fill(0x100)
        assert cache.fill(0x100) is None
        assert cache.occupancy() == 1

    def test_eviction_returns_victim_line_address(self):
        cache = small_cache(ways=2, sets=4, line=32)
        stride = cache.config.same_set_stride
        cache.fill(0)
        cache.fill(stride)
        victim = cache.fill(2 * stride)
        assert victim == 0

    def test_lru_evicts_least_recently_used(self):
        cache = small_cache(ways=2, sets=4, line=32)
        stride = cache.config.same_set_stride
        cache.fill(0)
        cache.fill(stride)
        cache.lookup(0)  # touch line 0, making `stride` the LRU victim
        victim = cache.fill(2 * stride)
        assert victim == stride
        assert cache.contains(0)

    def test_fifo_ignores_recency(self):
        cache = small_cache(ways=2, sets=4, line=32, replacement="fifo")
        stride = cache.config.same_set_stride
        cache.fill(0)
        cache.fill(stride)
        cache.lookup(0)  # touching must not protect line 0 under FIFO
        victim = cache.fill(2 * stride)
        assert victim == 0

    def test_rsk_pattern_misses_forever(self):
        """W + 1 same-set lines accessed cyclically never hit under LRU."""
        cache = small_cache(ways=4, sets=8, line=32)
        stride = cache.config.same_set_stride
        addresses = [index * stride for index in range(5)]
        hits = 0
        for _ in range(10):
            for addr in addresses:
                if cache.lookup(addr):
                    hits += 1
                else:
                    cache.fill(addr)
        assert hits == 0

    def test_within_capacity_pattern_always_hits_after_warmup(self):
        cache = small_cache(ways=4, sets=8, line=32)
        stride = cache.config.same_set_stride
        addresses = [index * stride for index in range(4)]
        for addr in addresses:
            cache.lookup(addr)
            cache.fill(addr)
        assert all(cache.lookup(addr) for addr in addresses)

    def test_occupancy_and_resident_lines(self):
        cache = small_cache()
        cache.fill(0x100)
        cache.fill(0x200)
        assert cache.occupancy() == 2
        assert cache.resident_lines() == (0x100, 0x200)

    def test_invalidate_removes_line(self):
        cache = small_cache()
        cache.fill(0x100)
        assert cache.invalidate(0x100)
        assert not cache.contains(0x100)
        assert not cache.invalidate(0x100)

    def test_flush_empties_cache_but_keeps_stats(self):
        cache = small_cache()
        cache.lookup(0x100)
        cache.fill(0x100)
        cache.flush()
        assert cache.occupancy() == 0
        assert cache.stats.read_misses == 1

    def test_ways_used_per_set(self):
        cache = small_cache(ways=2, sets=4, line=32)
        stride = cache.config.same_set_stride
        cache.fill(0)
        cache.fill(stride)
        assert cache.ways_used(0) == 2
        assert cache.ways_used(32) == 0


class TestStats:
    def test_read_and_write_counters(self):
        cache = small_cache()
        cache.lookup(0x100)                 # read miss
        cache.fill(0x100)
        cache.lookup(0x100)                 # read hit
        cache.lookup(0x100, is_write=True)  # write hit
        cache.lookup(0x200, is_write=True)  # write miss
        stats = cache.stats
        assert stats.read_misses == 1
        assert stats.read_hits == 1
        assert stats.write_hits == 1
        assert stats.write_misses == 1
        assert stats.accesses == 4
        assert stats.misses == 2

    def test_hit_rate(self):
        cache = small_cache()
        cache.fill(0x100)
        cache.lookup(0x100)
        cache.lookup(0x200)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_hit_rate_of_untouched_cache_is_zero(self):
        assert small_cache().stats.hit_rate == 0.0

    def test_fill_and_eviction_counters(self):
        cache = small_cache(ways=1, sets=1, line=32)
        cache.fill(0x00)
        cache.fill(0x20)
        assert cache.stats.fills == 2
        assert cache.stats.evictions == 1

    def test_stats_reset(self):
        cache = small_cache()
        cache.lookup(0x100)
        cache.stats.reset()
        assert cache.stats.accesses == 0

    def test_write_back_marks_dirty_on_write_hit(self):
        cache = small_cache(write_policy="write_back")
        cache.fill(0x100)
        cache.lookup(0x100, is_write=True)
        # The line stays resident; dirtiness is internal but must not crash
        # eviction bookkeeping.
        stride = cache.config.same_set_stride
        cache.fill(0x100 + stride)
        cache.fill(0x100 + 2 * stride)
        assert cache.stats.evictions == 1


class TestWayPartitionedCache:
    def make(self, ways: int = 4, sets: int = 4) -> WayPartitionedCache:
        config = CacheConfig(size_bytes=ways * sets * 32, ways=ways, line_size=32, hit_latency=2)
        partitions = {0: (0, 1), 1: (2, 3)}
        return WayPartitionedCache(config, partitions, name="l2")

    def test_partition_of_returns_assigned_ways(self):
        cache = self.make()
        assert cache.partition_of(0) == (0, 1)
        assert cache.partition_of(1) == (2, 3)

    def test_partition_of_unknown_owner(self):
        with pytest.raises(SimulationError):
            self.make().partition_of(5)

    def test_empty_partition_rejected(self):
        config = CacheConfig(size_bytes=4 * 4 * 32, ways=4, line_size=32)
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(config, {0: ()})

    def test_out_of_range_way_rejected(self):
        config = CacheConfig(size_bytes=4 * 4 * 32, ways=4, line_size=32)
        with pytest.raises(ConfigurationError):
            WayPartitionedCache(config, {0: (7,)})

    def test_owner_eviction_stays_inside_partition(self):
        cache = self.make()
        stride = cache.config.same_set_stride
        # Owner 0 can hold two same-set lines; the third fill evicts one of its own.
        cache.fill_for(0, 0)
        cache.fill_for(0, stride)
        cache.fill_for(1, 2 * stride)
        victim = cache.fill_for(0, 3 * stride)
        assert victim in (0, stride)
        assert cache.contains(2 * stride), "the other owner's line must survive"

    def test_hits_across_partitions_are_visible(self):
        cache = self.make()
        cache.fill_for(0, 0x40)
        assert cache.lookup(0x40)

    def test_refill_of_resident_line_keeps_it(self):
        cache = self.make()
        cache.fill_for(0, 0x40)
        assert cache.fill_for(0, 0x40) is None

    def test_plain_fill_is_rejected(self):
        with pytest.raises(SimulationError):
            self.make().fill(0x40)
