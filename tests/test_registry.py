"""The generic ``Registry[T]`` utility and its three instantiations.

The arbiter/engine/topology registries (and the lazy ``_known_*``
configuration fallbacks) all rebase on :class:`repro.registry.Registry`;
these tests pin the shared behaviour — duplicate rejection, ordered listing,
rich lookup errors — exactly once, plus the wiring that keeps the three
instantiations and the declared tuples in ``repro.config`` in sync.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ARBITRATION_POLICIES,
    ENGINES,
    TOPOLOGIES,
    _known_arbitrations,
    _known_engines,
    _known_topologies,
)
from repro.errors import ConfigurationError
from repro.registry import Registry, registry_backed_names
from repro.sim.arbiter import ARBITER_REGISTRY
from repro.sim.scheduler import ENGINE_REGISTRY
from repro.sim.topology import TOPOLOGY_REGISTRY


class TestRegistry:
    def test_register_and_lookup(self):
        registry: Registry[int] = Registry("widget")
        registry.register("a", 1)
        registry.register("b", 2)
        assert registry.get("a") == 1
        assert registry.require("b") == 2
        assert registry.get("missing") is None
        assert registry.get("missing", 99) == 99

    def test_duplicate_rejected(self):
        registry: Registry[int] = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError):
            registry.register("a", 2)
        # The original entry survives the failed re-registration.
        assert registry.require("a") == 1

    def test_empty_name_rejected(self):
        registry: Registry[int] = Registry("widget")
        with pytest.raises(ConfigurationError):
            registry.register("", 1)

    def test_require_names_kind_and_alternatives(self):
        registry: Registry[int] = Registry("widget")
        registry.register("a", 1)
        with pytest.raises(ConfigurationError) as excinfo:
            registry.require("lottery")
        message = str(excinfo.value)
        assert "widget" in message
        assert "lottery" in message
        assert "a" in message

    def test_listing_preserves_registration_order(self):
        registry: Registry[int] = Registry("widget")
        for index, name in enumerate(("z", "a", "m")):
            registry.register(name, index)
        assert registry.names() == ("z", "a", "m")
        assert registry.values() == (0, 1, 2)
        assert registry.items() == (("z", 0), ("a", 1), ("m", 2))
        assert list(registry) == ["z", "a", "m"]
        assert len(registry) == 3
        assert "a" in registry and "lottery" not in registry

    def test_pop_supports_test_deregistration(self):
        registry: Registry[int] = Registry("widget")
        registry.register("a", 1)
        assert registry.pop("a") == 1
        assert "a" not in registry
        registry.register("a", 2)  # the name is reusable afterwards
        assert registry.require("a") == 2


class TestRegistryBackedNames:
    def test_reads_through_to_the_registry(self):
        names = registry_backed_names("repro.sim.arbiter", "registered_arbiters", ("stale",))
        assert names() == ARBITER_REGISTRY.names()

    def test_unimportable_module_falls_back(self):
        names = registry_backed_names("repro.no_such_module", "accessor", ("fallback",))
        assert names() == ("fallback",)


class TestInstantiations:
    """The three concrete registries sit on the shared utility and agree
    with the built-in tuples declared in ``repro.config``."""

    @pytest.mark.parametrize(
        "registry,declared",
        [
            (ARBITER_REGISTRY, ARBITRATION_POLICIES),
            (ENGINE_REGISTRY, ENGINES),
            (TOPOLOGY_REGISTRY, TOPOLOGIES),
        ],
        ids=["arbiters", "engines", "topologies"],
    )
    def test_built_ins_match_declared_tuples(self, registry, declared):
        assert isinstance(registry, Registry)
        assert registry.names() == declared

    def test_known_name_fallbacks_read_the_registries(self):
        assert _known_arbitrations() == ARBITER_REGISTRY.names()
        assert _known_engines() == ENGINE_REGISTRY.names()
        assert _known_topologies() == TOPOLOGY_REGISTRY.names()
