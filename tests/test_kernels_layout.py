"""Unit tests for the address-layout helpers used by the kernel generators."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, reference_config
from repro.errors import ProgramError
from repro.kernels.layout import (
    CORE_REGION_BYTES,
    CoreAddressSpace,
    core_address_space,
    footprint_fits_l2_partition,
    same_set_addresses,
)


class TestCoreAddressSpace:
    def test_regions_are_disjoint(self):
        spaces = [core_address_space(core) for core in range(4)]
        for first, second in zip(spaces, spaces[1:]):
            assert first.data_limit <= second.data_base

    def test_code_bases_are_distinct(self):
        bases = {core_address_space(core).code_base for core in range(4)}
        assert len(bases) == 4

    def test_region_size(self):
        space = core_address_space(0)
        assert space.data_limit - space.data_base == CORE_REGION_BYTES

    def test_negative_core_rejected(self):
        with pytest.raises(ProgramError):
            core_address_space(-1)


class TestSameSetAddresses:
    def test_addresses_collide_in_the_target_cache(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        addresses = same_set_addresses(cache, 5, base=0x1000_0000)
        shift = cache.line_size.bit_length() - 1
        indices = {(addr >> shift) & (cache.num_sets - 1) for addr in addresses}
        assert len(indices) == 1

    def test_stride_matches_cache_geometry(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        addresses = same_set_addresses(cache, 3)
        assert addresses[1] - addresses[0] == cache.same_set_stride

    def test_base_rounded_to_line(self):
        cache = CacheConfig(size_bytes=1024, ways=2, line_size=32)
        addresses = same_set_addresses(cache, 2, base=0x101)
        assert addresses[0] == 0x100

    def test_count_must_be_positive(self):
        cache = CacheConfig(size_bytes=1024, ways=2, line_size=32)
        with pytest.raises(ProgramError):
            same_set_addresses(cache, 0)

    def test_distinct_lines(self):
        cache = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        addresses = same_set_addresses(cache, 8)
        assert len(set(addresses)) == 8


class TestFootprintCheck:
    def test_rsk_footprint_fits_reference_partition(self):
        config = reference_config()
        addresses = same_set_addresses(config.dl1, config.dl1.ways + 1, base=0x1000_0000)
        assert footprint_fits_l2_partition(config, addresses)

    def test_oversized_footprint_rejected(self):
        config = reference_config()
        # More same-L2-set lines than a single L2 way can hold.
        l2 = config.l2.cache
        addresses = [0x1000_0000 + index * l2.same_set_stride for index in range(8)]
        assert not footprint_fits_l2_partition(config, addresses)
