"""Unit tests for the instruction and program model."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ProgramError
from repro.sim.isa import (
    INSTRUCTION_BYTES,
    Alu,
    Instruction,
    Load,
    Nop,
    Program,
    Store,
    concatenate_bodies,
)


class TestInstructions:
    def test_nop_is_not_memory(self):
        assert not Nop().is_memory

    def test_alu_default_latency(self):
        assert Alu().latency == 1

    def test_alu_rejects_zero_latency(self):
        with pytest.raises(ProgramError):
            Alu(latency=0)

    def test_load_is_memory(self):
        assert Load(0x100).is_memory

    def test_store_is_memory(self):
        assert Store(0x100).is_memory

    def test_load_rejects_negative_address(self):
        with pytest.raises(ProgramError):
            Load(-4)

    def test_store_rejects_negative_address(self):
        with pytest.raises(ProgramError):
            Store(-4)

    def test_mnemonics(self):
        assert Nop().mnemonic == "nop"
        assert Alu().mnemonic == "alu"
        assert Load(0).mnemonic == "load"
        assert Store(0).mnemonic == "store"

    def test_instructions_are_hashable_and_reusable(self):
        body = (Load(0x40),) * 3
        assert len({id(instr) for instr in body}) == 1


class TestProgramValidation:
    def test_empty_body_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="empty", body=())

    def test_negative_iterations_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="bad", body=(Nop(),), iterations=-1)

    def test_unaligned_base_pc_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="bad", body=(Nop(),), base_pc=2)

    def test_non_instruction_in_body_rejected(self):
        with pytest.raises(ProgramError):
            Program(name="bad", body=(Nop(), "load r1"), iterations=1)

    def test_zero_iterations_allowed(self):
        program = Program(name="noop", body=(Nop(),), iterations=0)
        assert program.total_instructions == 0


class TestProgramProperties:
    def test_infinite_program(self):
        program = Program(name="inf", body=(Nop(),), iterations=None)
        assert program.is_infinite
        assert program.total_instructions is None
        assert program.count_memory_instructions() is None

    def test_total_instructions_counts_prologue(self):
        program = Program(name="p", body=(Nop(), Nop()), iterations=3, prologue=(Alu(),))
        assert program.total_instructions == 1 + 3 * 2

    def test_memory_instruction_count(self):
        body = (Load(0), Nop(), Store(64))
        program = Program(name="p", body=body, iterations=5)
        assert program.count_memory_instructions() == 10

    def test_data_lines_are_line_aligned(self):
        program = Program(name="p", body=(Load(0x101), Store(0x13F)), iterations=1)
        assert program.data_lines(32) == {0x100, 0x120}

    def test_code_lines_cover_prologue_and_body(self):
        program = Program(
            name="p",
            body=tuple(Nop() for _ in range(10)),
            prologue=(Nop(),),
            iterations=1,
            base_pc=0x1000,
        )
        lines = program.code_lines(32)
        # 11 instructions of 4 bytes = 44 bytes starting at 0x1000 -> 2 lines.
        assert lines == {0x1000, 0x1020}

    def test_body_length(self):
        program = Program(name="p", body=(Nop(), Nop(), Nop()), iterations=1)
        assert program.body_length == 3

    def test_with_iterations_preserves_other_fields(self):
        program = Program(name="p", body=(Load(0),), iterations=2, base_pc=0x2000)
        other = program.with_iterations(None)
        assert other.is_infinite
        assert other.base_pc == 0x2000
        assert other.body == program.body

    def test_summary_mentions_mix_and_iterations(self):
        program = Program(name="mix", body=(Load(0), Nop()), iterations=7)
        summary = program.summary()
        assert "mix" in summary
        assert "7" in summary
        assert "load" in summary


class TestInstructionStream:
    def test_finite_stream_length(self):
        program = Program(name="p", body=(Nop(), Nop()), iterations=3)
        assert len(list(program.instruction_stream())) == 6

    def test_stream_pcs_repeat_across_iterations(self):
        program = Program(name="p", body=(Nop(), Nop()), iterations=2, base_pc=0x100)
        pcs = [pc for pc, _ in program.instruction_stream()]
        assert pcs == [0x100, 0x104, 0x100, 0x104]

    def test_prologue_comes_first_with_distinct_pcs(self):
        program = Program(name="p", body=(Nop(),), iterations=2, prologue=(Alu(),), base_pc=0x100)
        stream = list(program.instruction_stream())
        assert stream[0][0] == 0x100
        assert isinstance(stream[0][1], Alu)
        assert stream[1][0] == 0x100 + INSTRUCTION_BYTES

    def test_infinite_stream_keeps_producing(self):
        program = Program(name="inf", body=(Nop(),), iterations=None)
        first_ten = list(itertools.islice(program.instruction_stream(), 10))
        assert len(first_ten) == 10

    def test_stream_preserves_instruction_identity(self):
        load = Load(0x40)
        program = Program(name="p", body=(load,), iterations=3)
        instrs = [instr for _, instr in program.instruction_stream()]
        assert all(instr is load for instr in instrs)


class TestConcatenateBodies:
    def test_concatenates_in_order(self):
        a = (Load(0),)
        b = (Nop(), Nop())
        combined = concatenate_bodies(a, b)
        assert combined == (Load(0), Nop(), Nop())

    def test_empty_parts_allowed(self):
        assert concatenate_bodies((), (Nop(),)) == (Nop(),)
