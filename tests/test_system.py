"""Unit tests for system assembly, the run loop and the skip-ahead optimisation."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.config import reference_config, small_config
from repro.errors import ConfigurationError, SimulationError
from repro.kernels.rsk import build_rsk
from repro.sim.arbiter import FixedPriorityArbiter, RoundRobinArbiter
from repro.sim.isa import Load, Nop, Program, Store
from repro.sim.system import System

from test_core import micro_config


class TestConstruction:
    def test_programs_padded_with_idle_cores(self):
        config = micro_config(num_cores=2)
        system = System(config, [Program(name="p", body=(Nop(),), iterations=1)])
        assert system.programs[1] is None

    def test_too_many_programs_rejected(self):
        config = micro_config(num_cores=1)
        programs = [Program(name="p", body=(Nop(),), iterations=1)] * 2
        with pytest.raises(ConfigurationError):
            System(config, programs)

    def test_external_arbiter_must_match_port_count(self):
        config = micro_config(num_cores=2)
        with pytest.raises(SimulationError):
            System(config, [None, None], arbiter=RoundRobinArbiter(2))

    def test_external_arbiter_accepted(self):
        config = micro_config(num_cores=2)
        system = System(config, [None, None], arbiter=FixedPriorityArbiter(3))
        assert isinstance(system.bus.arbiter, FixedPriorityArbiter)

    def test_response_port_is_last(self):
        config = micro_config(num_cores=2)
        system = System(config, [None, None])
        assert system.response_port == 2
        assert system.bus.num_ports == 3


class TestRunTermination:
    def test_run_requires_an_observed_core(self):
        config = micro_config(num_cores=2)
        infinite = Program(name="inf", body=(Nop(),), iterations=None)
        system = System(config, [infinite, None])
        with pytest.raises(ConfigurationError):
            system.run()

    def test_observed_core_must_have_finite_program(self):
        config = micro_config(num_cores=2)
        infinite = Program(name="inf", body=(Nop(),), iterations=None)
        system = System(config, [infinite, None])
        with pytest.raises(ConfigurationError):
            system.run(observed_cores=[0])

    def test_observed_core_must_exist(self):
        config = micro_config()
        program = Program(name="p", body=(Nop(),), iterations=1)
        system = System(config, [program])
        with pytest.raises(ConfigurationError):
            system.run(observed_cores=[3])

    def test_observed_core_must_have_a_program(self):
        config = micro_config(num_cores=2)
        program = Program(name="p", body=(Nop(),), iterations=1)
        system = System(config, [program, None])
        with pytest.raises(ConfigurationError):
            system.run(observed_cores=[1])

    def test_timeout_flag_set_when_budget_exhausted(self):
        config = micro_config()
        program = Program(name="long", body=tuple(Nop() for _ in range(10)), iterations=100)
        system = System(config, [program], preload_il1=True)
        result = system.run(max_cycles=50)
        assert result.timed_out
        assert result.done_cycles[0] is None

    def test_execution_time_of_unfinished_core_raises(self):
        config = micro_config(num_cores=2)
        finite = Program(name="p", body=(Nop(),), iterations=1)
        infinite = Program(name="inf", body=(Nop(),), iterations=None)
        system = System(config, [finite, infinite], preload_il1=True)
        result = system.run(observed_cores=[0])
        with pytest.raises(SimulationError):
            result.execution_time(1)

    def test_default_observed_cores_are_all_finite_programs(self):
        config = micro_config(num_cores=2)
        a = Program(name="a", body=(Nop(),), iterations=2)
        b = Program(name="b", body=(Nop(),), iterations=5, base_pc=0x5000_0000)
        system = System(config, [a, b], preload_il1=True)
        result = system.run()
        assert result.done_cycles[0] == 2
        assert result.done_cycles[1] == 5


class TestSkipAhead:
    @pytest.mark.parametrize("l1_latency", [1, 4])
    def test_skip_ahead_matches_strict_mode_for_rsk(self, l1_latency):
        config = micro_config(num_cores=2, l1_latency=l1_latency)
        scua = build_rsk(config, 0, iterations=20)
        contender = build_rsk(config, 1, iterations=None)

        def run(skip: bool) -> int:
            system = System(config, [scua, contender], preload_il1=True, preload_l2=True)
            return system.run(observed_cores=[0], skip_ahead=skip).execution_time(0)

        assert run(True) == run(False)

    def test_skip_ahead_matches_strict_mode_with_stores(self):
        config = micro_config(num_cores=2, store_buffer_entries=2)
        body = tuple(Store(0x100 + 64 * index) for index in range(4))
        scua = Program(name="stores", body=body, iterations=10)
        contender = build_rsk(config, 1, iterations=None)

        def run(skip: bool) -> int:
            system = System(config, [scua, contender], preload_il1=True, preload_l2=True)
            return system.run(observed_cores=[0], skip_ahead=skip).execution_time(0)

        assert run(True) == run(False)

    def test_skip_ahead_matches_strict_mode_with_dram(self):
        config = micro_config()
        # Cold L2: the single load goes to DRAM through the response port.
        program = Program(name="cold", body=(Load(0x2000),), iterations=3)

        def run(skip: bool) -> int:
            system = System(config, [program], preload_il1=True)
            return system.run(skip_ahead=skip).execution_time(0)

        assert run(True) == run(False)


class TestPreloading:
    def test_preload_l2_removes_dram_accesses(self):
        config = micro_config(num_cores=2)
        scua = build_rsk(config, 0, iterations=5)
        warm = System(config, [scua], preload_l2=True, preload_il1=True)
        warm_result = warm.run()
        assert warm_result.pmc.dram_accesses == 0
        cold = System(config, [scua], preload_l2=False, preload_il1=True)
        cold_result = cold.run()
        assert cold_result.pmc.dram_accesses > 0

    def test_preload_dl1_makes_small_footprints_hit(self):
        config = micro_config()
        program = Program(name="p", body=(Load(0x100),), iterations=4)
        system = System(config, [program], preload_il1=True, preload_dl1=True, preload_l2=True)
        result = system.run()
        assert result.execution_time(0) == 4 * config.dl1.hit_latency

    def test_idle_cores_are_not_preloaded(self):
        config = micro_config(num_cores=2)
        program = Program(name="p", body=(Nop(),), iterations=1)
        system = System(config, [program, None], preload_l2=True, preload_il1=True)
        assert system.cores[1].il1.occupancy() == 0


class TestCountersAndResults:
    def test_cycles_cover_the_whole_run(self):
        config = micro_config()
        program = Program(name="p", body=(Nop(),), iterations=7)
        system = System(config, [program], preload_il1=True)
        result = system.run()
        assert result.cycles >= result.execution_time(0)

    def test_bus_busy_cycles_match_request_count(self):
        config = micro_config(num_cores=2)
        scua = build_rsk(config, 0, iterations=10)
        system = System(config, [scua], preload_il1=True, preload_l2=True)
        result = system.run()
        lbus = config.bus_service_l2_hit
        assert result.pmc.bus_busy_cycles == result.pmc.core[0].bus_requests * lbus

    def test_trace_disabled_by_default(self):
        config = micro_config()
        program = Program(name="p", body=(Nop(),), iterations=1)
        result = System(config, [program], preload_il1=True).run()
        assert result.trace is None

    def test_describe_lists_programs(self):
        config = micro_config(num_cores=2)
        program = Program(name="payload", body=(Nop(),), iterations=1)
        system = System(config, [program, None])
        description = system.describe()
        assert "payload" in description["programs"][0]
        assert description["programs"][1] == "idle"

    def test_paper_reference_isolation_cost(self):
        """On the ref platform an L2-hit load costs 1 + 9 = 10 cycles."""
        config = reference_config()
        scua = build_rsk(config, 0, iterations=50)
        system = System(config, [scua], preload_il1=True, preload_l2=True)
        result = system.run()
        requests = result.pmc.core[0].bus_requests
        assert result.execution_time(0) == requests * 10
