"""Shared-resource topologies: registries, bank queues, composed bounds.

Covers the composable-interconnect stack end to end:

* the arbiter/engine/topology registries (and their agreement with the
  declared tuples in ``repro.config``, which is what keeps the CLI's
  ``list`` subcommand honest);
* the :class:`repro.sim.memctrl.BankQueuedMemoryController` request/grant
  lifecycle and its integer event horizon;
* the differential oracle: FIFO bank queues reproduce the ``bus_only``
  platform cycle for cycle (arrival order is service order);
* the ``multi_resource`` preset being selectable through configuration,
  serialisation and digests;
* the per-resource UBD terms summing to an end-to-end bound that covers the
  observed worst case of every sampled workload (the paper's
  trustworthiness argument, lifted to a two-stage topology).
"""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.config import (
    ARBITRATION_POLICIES,
    ENGINES,
    PRESETS,
    TOPOLOGIES,
    BusConfig,
    TopologyConfig,
    config_from_dict,
    get_preset,
    small_config,
)
from repro.errors import ConfigurationError, SimulationError
from repro.kernels.rsk import build_rsk
from repro.methodology.composition import (
    compose_etb_for_config,
    end_to_end_bound,
    per_resource_bounds,
)
from repro.methodology.experiment import ExperimentRunner, build_contender_set
from repro.methodology.workloads import build_workload_programs
from repro.sim.arbiter import (
    ARBITER_REGISTRY,
    Arbiter,
    create_arbiter,
    register_arbiter,
    registered_arbiters,
)
from repro.sim.bus import Bus
from repro.sim.dram import Dram
from repro.sim.memctrl import BankQueuedMemoryController, MemoryController
from repro.sim.resource import NO_EVENT, EventPort, SharedResource, min_horizon
from repro.sim.scheduler import registered_engines
from repro.sim.system import System
from repro.sim.topology import (
    TopologyHooks,
    build_topology,
    register_topology,
    registered_topologies,
)
from repro.config import DramConfig


def _queued_config(**overrides):
    return small_config(topology=TopologyConfig(name="bus_bank_queues"), **overrides)


def _rsk_programs(config, iterations=50, kind="load"):
    scua = build_rsk(config, 0, kind=kind, iterations=iterations)
    programs: List[Optional[object]] = [None] * config.num_cores
    programs[0] = scua
    for core, program in build_contender_set(config, 0, kind=kind).items():
        programs[core] = program
    return programs


def _observable(result):
    trace = None
    if result.trace is not None:
        trace = [
            (r.port, r.kind, r.addr, r.ready_cycle, r.grant_cycle, r.complete_cycle)
            for r in result.trace.records
        ]
    return {
        "cycles": result.cycles,
        "done": result.done_cycles,
        "instructions": result.instructions,
        "pmc": result.pmc.as_dict(),
        "trace": trace,
    }


# --------------------------------------------------------------------------- #
# Registries: the factories and the declared tuples must agree.
# --------------------------------------------------------------------------- #


class TestRegistries:
    def test_arbiter_registry_matches_declared_policies(self):
        assert registered_arbiters() == ARBITRATION_POLICIES

    def test_engine_registry_matches_declared_engines(self):
        assert registered_engines() == ENGINES

    def test_topology_registry_matches_declared_topologies(self):
        assert registered_topologies() == TOPOLOGIES

    def test_multi_resource_preset_registered(self):
        assert "multi_resource" in PRESETS
        config = get_preset("multi_resource")
        assert config.topology.name == "bus_bank_queues"
        assert config.topology.mem_arbitration == "fifo"

    def test_duplicate_arbiter_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_arbiter("round_robin")(lambda num_ports, tdma_slot: None)

    def test_duplicate_topology_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_topology("bus_only")(lambda config, cb: None)

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ConfigurationError):
            create_arbiter("lottery", 4)

    def test_registered_arbiter_usable_from_config(self):
        """A runtime-registered policy is constructible via BusConfig/System."""

        class EveryoneLosesArbiter(Arbiter):
            policy_name = "test_static_zero"

            def select(self, cycle, pending_ports):
                return min(pending_ports)

        name = "test_static_zero"
        register_arbiter(name, "test-only policy")(
            lambda num_ports, tdma_slot: EveryoneLosesArbiter(num_ports)
        )
        try:
            config = small_config(bus=BusConfig(arbitration=name))
            assert config.bus.arbitration == name
            programs = _rsk_programs(config, iterations=5)
            result = System(config, programs, preload_l2=True).run(observed_cores=[0])
            assert result.instructions[0] > 0
        finally:
            ARBITER_REGISTRY.pop(name)

    def test_build_topology_follows_configuration(self):
        hooks = TopologyHooks(service_callback=lambda request, cycle: 1)
        plain = build_topology(small_config(), hooks)
        queued = build_topology(_queued_config(), hooks)
        assert type(plain.memctrl) is MemoryController
        assert isinstance(queued.memctrl, BankQueuedMemoryController)
        assert queued.memctrl.num_ports == 3
        assert all(a.policy_name == "fifo" for a in queued.memctrl.bank_arbiters)
        # Shared-bus topologies return data on the bus itself, on the extra
        # port behind the demand ports.
        assert plain.response_bus is plain.request_bus
        assert plain.request_bus.num_ports == 4
        assert plain.response_port_of(0) == 3

    def test_build_split_bus_chains_three_resources(self):
        config = small_config(topology=TopologyConfig(name="split_bus"))
        chain = build_topology(config, TopologyHooks(service_callback=lambda request, cycle: 1))
        assert [r.resource_name for r in chain.resources] == [
            "bus",
            "memqueue",
            "bus_response",
        ]
        assert chain.response_bus is not chain.request_bus
        assert isinstance(chain.response_bus, Bus)
        # No shared response port: each core's data returns on its own
        # response-channel port.
        assert chain.request_bus.num_ports == config.num_cores
        assert chain.response_bus.num_ports == config.num_cores
        assert [chain.response_port_of(core) for core in range(3)] == [0, 1, 2]
        assert chain.response_bus.arbiter.policy_name == "fifo"

    def test_resources_satisfy_shared_resource_protocol(self):
        system = System(_queued_config(), _rsk_programs(_queued_config(), 2))
        assert len(system.resources) == 2
        for resource in system.resources:
            assert isinstance(resource, SharedResource)
        assert [r.resource_name for r in system.resources] == ["bus", "memqueue"]
        split = System(small_config(topology=TopologyConfig(name="split_bus")), [None] * 3)
        assert [r.resource_name for r in split.resources] == [
            "bus",
            "memqueue",
            "bus_response",
        ]
        for resource in split.resources:
            assert isinstance(resource, SharedResource)

    def test_min_horizon_returns_earliest_resource_event(self):
        class _Stub(EventPort):
            resource_name = "stub"

            def __init__(self, horizon):
                self._horizon = horizon
                self._init_event_port()

            def deliver(self, cycle):
                return None

            def arbitrate(self, cycle):
                return None

            def next_event_cycle(self, cycle):
                return self._horizon

            def reset(self):
                pass

        assert min_horizon([], 0) == NO_EVENT
        assert min_horizon([_Stub(NO_EVENT)], 0) == NO_EVENT
        assert min_horizon([_Stub(40), _Stub(7), _Stub(NO_EVENT)], 0) == 7
        # And on a real system: an idle platform reports no self-driven event.
        system = System(_queued_config(), [None] * 3)
        assert min_horizon(system.resources, 0) == NO_EVENT


# --------------------------------------------------------------------------- #
# Configuration plumbing.
# --------------------------------------------------------------------------- #


class TestTopologyConfig:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(name="mesh")

    def test_unknown_mem_arbitration_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologyConfig(name="bus_bank_queues", mem_arbitration="lottery")

    def test_round_trip_and_digest(self):
        config = get_preset("multi_resource")
        rebuilt = config_from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.digest() == config.digest()

    def test_topology_changes_digest(self):
        assert small_config().digest() != _queued_config().digest()

    def test_legacy_dict_without_topology_defaults_to_bus_only(self):
        data = small_config().to_dict()
        del data["topology"]
        assert config_from_dict(data).topology.name == "bus_only"

    def test_describe_reports_topology(self):
        info = get_preset("multi_resource").describe()
        assert info["topology"] == "bus_bank_queues"
        assert info["mem_arbitration"] == "fifo"
        assert small_config().describe()["mem_arbitration"] is None

    def test_ubd_terms_sum_to_end_to_end(self):
        bus_only = small_config()
        assert bus_only.ubd_terms == {"bus": bus_only.ubd}
        assert bus_only.end_to_end_ubd == bus_only.ubd
        queued = _queued_config()
        terms = queued.ubd_terms
        assert set(terms) == {"bus", "memory", "bus_response"}
        assert queued.end_to_end_ubd == sum(terms.values())
        assert terms["bus"] > queued.ubd  # response port joins the round

    @pytest.mark.parametrize("policy", ["tdma", "fixed_priority"])
    def test_unbounded_bank_policies_have_no_composable_bounds(self, policy):
        """Fair-round reasoning covers RR/FIFO bank queues only; for TDMA
        (slot-governed wait) and fixed priority (starvation) the terms must
        refuse to exist rather than report a number delay can exceed."""
        config = small_config(
            topology=TopologyConfig(name="bus_bank_queues", mem_arbitration=policy)
        )
        assert not config.has_composable_bounds
        with pytest.raises(ConfigurationError):
            config.ubd_terms
        with pytest.raises(ConfigurationError):
            config.end_to_end_ubd
        # Fair policies on both stages do have the decomposition.
        assert _queued_config().has_composable_bounds
        assert small_config().has_composable_bounds

    @pytest.mark.parametrize("policy", ["tdma", "fixed_priority"])
    def test_unbounded_bus_policies_have_no_composable_bounds(self, policy):
        """The bus stage is gated too: a fixed-priority bus can starve the
        lowest-priority core indefinitely, so no end-to-end bound exists no
        matter how fair the bank queues are."""
        chained = small_config(
            bus=BusConfig(arbitration=policy),
            topology=TopologyConfig(name="bus_bank_queues"),
        )
        assert not chained.has_composable_bounds
        with pytest.raises(ConfigurationError):
            chained.end_to_end_ubd
        bus_only = small_config(bus=BusConfig(arbitration=policy))
        assert not bus_only.has_composable_bounds
        with pytest.raises(ConfigurationError):
            bus_only.ubd_terms


# --------------------------------------------------------------------------- #
# Bank-queued controller unit behaviour.
# --------------------------------------------------------------------------- #


def _collecting_controller(arbitration="fifo", num_banks=2, num_ports=3):
    completions = []
    controller = BankQueuedMemoryController(
        DramConfig(num_banks=num_banks),
        read_callback=lambda pending, cycle: completions.append((pending, cycle)),
        num_ports=num_ports,
        arbitration=arbitration,
    )
    return controller, completions


class TestBankQueuedController:
    def test_read_waits_for_bank_grant(self):
        controller, completions = _collecting_controller()
        pending = controller.enqueue_read(0, 0x100, cycle=0)
        assert pending.complete_cycle == -1  # not yet granted
        assert controller.queued_accesses == 1
        assert controller.outstanding_reads == 1  # queued reads count too
        controller.arbitrate(0)
        assert controller.queued_accesses == 0
        assert controller.stats.reads == 1
        # Base-class contract: the grant fills in the *returned* object's
        # completion cycle, and that same object reaches the callback.
        assert pending.complete_cycle > 0
        horizon = controller.next_event_cycle(0)
        assert isinstance(horizon, int) and horizon < NO_EVENT
        assert horizon == pending.complete_cycle
        controller.deliver(horizon)
        assert completions == [(pending, horizon)]
        assert controller.outstanding_reads == 0

    def test_same_bank_requests_serialise_fifo(self):
        controller, completions = _collecting_controller()
        # Same bank (same row group), different ports, arrival order 1 then 2.
        controller.enqueue_read(1, 0x000, cycle=0)
        controller.enqueue_read(2, 0x040, cycle=1)
        controller.arbitrate(1)
        assert controller.stats.reads == 1  # bank busy: only the head granted
        assert controller.queued_accesses == 1
        free_at = controller.grant_horizon(2)
        controller.arbitrate(free_at)
        assert controller.stats.reads == 2
        first = controller._in_flight[0][2]
        assert first.core_id == 1

    def test_fixed_priority_bank_reorders_service(self):
        controller, _ = _collecting_controller(arbitration="fixed_priority")
        controller.enqueue_read(2, 0x000, cycle=0)  # arrives first, low priority
        controller.enqueue_read(0, 0x040, cycle=0)  # same bank, high priority
        controller.arbitrate(0)
        granted = controller._in_flight[0][2]
        assert granted.core_id == 0  # priority wins over arrival order

    def test_distinct_banks_grant_in_the_same_cycle(self):
        config = DramConfig(num_banks=2)
        controller, _ = _collecting_controller(num_banks=2)
        dram = Dram(config)
        addr_a, addr_b = 0x0000, 0x1000  # row-interleaved: different banks
        assert dram.bank_of(addr_a) != dram.bank_of(addr_b)
        controller.enqueue_read(0, addr_a, cycle=0)
        controller.enqueue_read(1, addr_b, cycle=0)
        controller.arbitrate(0)
        assert controller.stats.reads == 2

    def test_writes_queue_and_count(self):
        controller, _ = _collecting_controller()
        assert controller.enqueue_write(0x100, cycle=0, core_id=1) == -1
        assert controller.queued_accesses == 1
        controller.arbitrate(0)
        assert controller.stats.writes == 1
        assert controller.stats.queue_grants == 1

    def test_queue_wait_statistics(self):
        controller, _ = _collecting_controller()
        controller.enqueue_read(0, 0x000, cycle=0)
        controller.enqueue_read(1, 0x040, cycle=0)  # same bank: must wait
        controller.arbitrate(0)
        wait_until = controller.grant_horizon(1)
        controller.arbitrate(wait_until)
        assert controller.stats.queue_grants == 2
        assert controller.stats.max_queue_wait == wait_until
        assert controller.stats.average_queue_wait == pytest.approx(wait_until / 2)

    def test_out_of_range_port_rejected(self):
        controller, _ = _collecting_controller(num_ports=2)
        with pytest.raises(SimulationError):
            controller.enqueue_read(5, 0x100, cycle=0)

    def test_idle_horizon_is_no_event(self):
        controller, _ = _collecting_controller()
        assert controller.next_event_cycle(0) == NO_EVENT

    def test_reset_clears_queues_and_arbiters(self):
        controller, _ = _collecting_controller(arbitration="round_robin")
        controller.enqueue_read(0, 0x000, cycle=0)
        controller.enqueue_read(1, 0x040, cycle=0)
        controller.arbitrate(0)
        controller.reset()
        assert controller.queued_accesses == 0
        assert controller.outstanding_reads == 0
        assert controller.next_event_cycle(0) == NO_EVENT


# --------------------------------------------------------------------------- #
# The differential oracle: FIFO bank queues == bus_only, cycle for cycle.
# --------------------------------------------------------------------------- #


class TestFifoQueuesMatchBusOnly:
    @pytest.mark.parametrize("kind", ["load", "store"])
    def test_dram_heavy_rsk_identical(self, kind):
        """Arrival order is service order under FIFO banks, so the chained
        topology must reproduce the paper's platform exactly — a strong
        whole-system check that the queue stage adds no phantom cycles."""
        results = {}
        for name, config in (
            ("bus_only", small_config()),
            ("queued", _queued_config()),
        ):
            programs = _rsk_programs(config, iterations=40, kind=kind)
            system = System(config, programs, trace=True)  # no preload: hit DRAM
            results[name] = _observable(system.run(observed_cores=[0]))
        assert results["bus_only"] == results["queued"]

    def test_mixed_synthetic_workload_identical(self):
        tasks = ("tblook", "cacheb", "matrix")
        results = {}
        for name, config in (
            ("bus_only", small_config()),
            ("queued", _queued_config()),
        ):
            programs = build_workload_programs(
                config, tasks, observed_core=0, observed_iterations=6, seed=7
            )
            system = System(config, programs, trace=True)
            results[name] = _observable(system.run(observed_cores=[0]))
        assert results["bus_only"] == results["queued"]


# --------------------------------------------------------------------------- #
# Per-resource bounds: the end-to-end UBD covers every sampled workload.
# --------------------------------------------------------------------------- #


class TestComposedBounds:
    def test_per_resource_bounds_match_config(self):
        config = _queued_config()
        assert per_resource_bounds(config) == config.ubd_terms
        assert end_to_end_bound(config) == config.end_to_end_ubd

    def test_memory_requests_cannot_exceed_bus_requests(self):
        with pytest.raises(Exception):
            compose_etb_for_config(
                _queued_config(), "bad", isolation_time=10,
                bus_requests=1, memory_requests=2,
            )

    def test_bus_only_refuses_memory_traffic(self):
        """A bus-only decomposition has no memory-stage terms, so composing
        an ETB for a task with DRAM traffic must refuse (raise) rather than
        return a pad that bank/response contention can exceed."""
        from repro.errors import MethodologyError

        with pytest.raises(MethodologyError):
            compose_etb_for_config(
                small_config(), "dram-task", isolation_time=100,
                bus_requests=50, memory_requests=10,
            )
        # Preloaded workloads (no memory traffic) still compose fine.
        report = compose_etb_for_config(
            small_config(), "warm-task", isolation_time=100,
            bus_requests=50, memory_requests=0,
        )
        assert report.etb == 100 + 50 * small_config().ubd

    @pytest.mark.parametrize(
        "tasks",
        [
            None,  # rsk-load against rsk contenders (the worst case)
            ("tblook", "cacheb", "matrix"),
            ("matrix", "tblook", "tblook"),
            ("cacheb", "rspeed", "aifirf"),
        ],
    )
    def test_etb_covers_observed_worst_case(self, tasks):
        """Acceptance: on the chained topology, the summed per-resource
        bounds, applied MBTA-style, must cover the observed contended time
        of every sampled workload (rsk and EEMBC-like)."""
        config = _queued_config()
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=False)
        if tasks is None:
            scua = build_rsk(config, 0, iterations=40)
            contenders = build_contender_set(config, 0)
        else:
            programs = build_workload_programs(
                config, tasks, observed_core=0, observed_iterations=8, seed=11
            )
            scua = programs[0]
            contenders = {
                core: program
                for core, program in enumerate(programs)
                if core != 0 and program is not None
            }
        isolation, contended = runner.run_pair(scua, contenders)
        nr_bus = isolation.bus_requests
        nr_mem = isolation.result.pmc.dram_accesses
        report = compose_etb_for_config(
            config,
            task_name=scua.name,
            isolation_time=isolation.execution_time,
            bus_requests=nr_bus,
            memory_requests=nr_mem,
            observed_contended_time=contended.execution_time,
        )
        assert report.covers_observation, report.summary()
        assert report.etb == isolation.execution_time + sum(report.pads.values())

    def test_bus_term_bounds_observed_request_delays(self):
        """Per-request: the bus term alone must cover every observed
        bus-grant delay of the observed core on the chained topology."""
        from repro.analysis.contention import contention_histogram

        config = _queued_config()
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=False)
        scua = build_rsk(config, 0, iterations=60)
        contended = runner.run_against_rsk(scua, trace=True)
        histogram = contention_histogram(contended.trace, 0)
        assert histogram.max_observed <= config.ubd_terms["bus"]
