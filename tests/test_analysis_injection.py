"""Unit tests for the delta_nop derivation."""

from __future__ import annotations

import pytest

from repro.analysis.injection import DeltaNopEstimate, derive_delta_nop
from repro.config import small_config
from repro.errors import AnalysisError
from repro.kernels.rsk import build_nop_kernel
from repro.sim.isa import Load, Nop, Program


class TestDeriveDeltaNop:
    def test_small_platform_measures_one_cycle_per_nop(self, tiny_config):
        estimate = derive_delta_nop(tiny_config, iterations=3)
        assert estimate.rounded == 1
        assert estimate.cycles_per_nop == pytest.approx(1.0, rel=0.02)

    def test_reference_platform_measures_one_cycle_per_nop(self, ref_config):
        estimate = derive_delta_nop(ref_config, iterations=2)
        assert estimate.rounded == 1

    def test_two_cycle_nop_platform(self):
        config = small_config(nop_latency=2)
        estimate = derive_delta_nop(config, iterations=3)
        assert estimate.rounded == 2

    def test_explicit_kernel_accepted(self, tiny_config):
        kernel = build_nop_kernel(tiny_config, 0, iterations=2)
        estimate = derive_delta_nop(tiny_config, kernel=kernel)
        assert estimate.executed_nops == kernel.total_instructions

    def test_infinite_kernel_rejected(self, tiny_config):
        kernel = Program(name="inf", body=(Nop(),), iterations=None)
        with pytest.raises(AnalysisError):
            derive_delta_nop(tiny_config, kernel=kernel)

    def test_empty_kernel_rejected(self, tiny_config):
        kernel = Program(name="empty", body=(Nop(),), iterations=0)
        with pytest.raises(AnalysisError):
            derive_delta_nop(tiny_config, kernel=kernel)

    def test_cold_instruction_cache_only_adds_small_error(self, tiny_config):
        # Enough iterations amortise the handful of cold IL1 misses, exactly
        # as the paper's "as big as possible without causing instruction
        # cache misses" body does on real hardware.
        warm = derive_delta_nop(tiny_config, iterations=50, preload_il1=True)
        cold = derive_delta_nop(tiny_config, iterations=50, preload_il1=False)
        assert cold.cycles_per_nop >= warm.cycles_per_nop
        assert cold.rounded == warm.rounded

    def test_runs_on_requested_core(self, tiny_config):
        estimate = derive_delta_nop(tiny_config, core_id=1, iterations=2)
        assert estimate.rounded == 1


class TestEstimateObject:
    def test_relative_rounding_error(self):
        estimate = DeltaNopEstimate(
            cycles_per_nop=1.02, rounded=1, executed_nops=100, execution_time=102
        )
        assert estimate.relative_rounding_error == pytest.approx(0.02)

    def test_zero_rounded_yields_infinite_error(self):
        estimate = DeltaNopEstimate(
            cycles_per_nop=0.0, rounded=0, executed_nops=1, execution_time=0
        )
        assert estimate.relative_rounding_error == float("inf")
