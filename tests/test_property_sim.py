"""Property-based tests (hypothesis) for the simulator substrate."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.sim.arbiter import RoundRobinArbiter
from repro.sim.cache import SetAssociativeCache
from repro.sim.isa import Alu, Load, Nop, Program, Store
from repro.sim.system import System

# tests/ is not a package (no __init__.py); pytest's rootdir-relative sys.path
# insertion makes the sibling module importable absolutely.
from test_core import micro_config

# --------------------------------------------------------------------------- #
# Cache invariants.
# --------------------------------------------------------------------------- #

cache_configs = st.builds(
    CacheConfig,
    size_bytes=st.sampled_from([512, 1024, 2048, 4096]),
    ways=st.sampled_from([1, 2, 4]),
    line_size=st.sampled_from([16, 32, 64]),
    replacement=st.sampled_from(["lru", "fifo"]),
)

addresses = st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200)


class TestCacheProperties:
    @given(config=cache_configs, addrs=addresses)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, config, addrs):
        cache = SetAssociativeCache(config)
        for addr in addrs:
            if not cache.lookup(addr):
                cache.fill(addr)
        assert cache.occupancy() <= config.ways * config.num_sets
        for line_set_index in range(config.num_sets):
            assert cache.ways_used(line_set_index * config.line_size) <= config.ways

    @given(config=cache_configs, addrs=addresses)
    @settings(max_examples=60, deadline=None)
    def test_filled_line_hits_immediately_afterwards(self, config, addrs):
        cache = SetAssociativeCache(config)
        for addr in addrs:
            cache.fill(addr)
            assert cache.lookup(addr), "a just-filled line must hit"

    @given(config=cache_configs, addrs=addresses)
    @settings(max_examples=60, deadline=None)
    def test_stats_accesses_equals_number_of_lookups(self, config, addrs):
        cache = SetAssociativeCache(config)
        for addr in addrs:
            cache.lookup(addr)
        assert cache.stats.accesses == len(addrs)
        assert cache.stats.read_hits + cache.stats.read_misses == len(addrs)


# --------------------------------------------------------------------------- #
# Round-robin arbiter invariants.
# --------------------------------------------------------------------------- #


class TestRoundRobinProperties:
    @given(
        num_ports=st.integers(min_value=1, max_value=8),
        grants=st.lists(st.integers(min_value=0, max_value=7), max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_priority_order_is_always_a_permutation(self, num_ports, grants):
        arbiter = RoundRobinArbiter(num_ports)
        for port in grants:
            arbiter.notify_grant(0, port % num_ports)
            assert sorted(arbiter.priority_order()) == list(range(num_ports))

    @given(num_ports=st.integers(min_value=2, max_value=8), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_pending_port_served_within_one_round(self, num_ports, data):
        """Starvation freedom: with all ports pending, each port is granted
        exactly once in any window of num_ports consecutive grants."""
        arbiter = RoundRobinArbiter(
            num_ports,
            initial_owner=data.draw(st.integers(min_value=-1, max_value=num_ports - 1)),
        )
        pending = list(range(num_ports))
        granted = []
        for _ in range(num_ports):
            winner = arbiter.select(0, pending)
            granted.append(winner)
            arbiter.notify_grant(0, winner)
        assert sorted(granted) == pending


# --------------------------------------------------------------------------- #
# Whole-system invariants on randomly generated small programs.
# --------------------------------------------------------------------------- #


program_strategy = st.builds(
    lambda body, iterations: Program(name="random", body=tuple(body), iterations=iterations),
    body=st.lists(
        st.one_of(
            st.builds(Nop),
            st.builds(Alu, latency=st.integers(min_value=1, max_value=3)),
            st.builds(
                Load, addr=st.integers(min_value=0, max_value=15).map(lambda i: 0x100 + 32 * i)
            ),
            st.builds(
                Store, addr=st.integers(min_value=0, max_value=15).map(lambda i: 0x300 + 32 * i)
            ),
        ),
        min_size=1,
        max_size=10,
    ),
    iterations=st.integers(min_value=1, max_value=6),
)


class TestSystemProperties:
    @given(program=program_strategy)
    @settings(max_examples=40, deadline=None)
    def test_skip_ahead_never_changes_execution_time(self, program):
        config = micro_config(num_cores=1)
        times = []
        for skip in (True, False):
            system = System(config, [program], preload_il1=True, preload_l2=True)
            times.append(system.run(skip_ahead=skip).execution_time(0))
        assert times[0] == times[1]

    @given(program=program_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_instructions_retire_and_time_is_bounded_below(self, program):
        config = micro_config(num_cores=1)
        system = System(config, [program], preload_il1=True, preload_l2=True)
        result = system.run()
        total = program.total_instructions
        assert result.instructions[0] == total
        # Every instruction needs at least one cycle.
        assert result.execution_time(0) >= total

    @given(program=program_strategy)
    @settings(max_examples=30, deadline=None)
    def test_bus_busy_cycles_consistent_with_requests(self, program):
        config = micro_config(num_cores=1)
        system = System(config, [program], trace=True, preload_il1=True, preload_l2=True)
        result = system.run()
        completed = result.trace.completed_records()
        assert result.pmc.bus_busy_cycles == sum(r.service_cycles for r in completed)

    @given(program=program_strategy, contended=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_contention_never_speeds_up_a_single_request_platform(self, program, contended):
        """On this in-order platform adding rsk contenders never shortens the
        observed execution time (no timing anomalies for these kernels)."""
        from repro.kernels.rsk import build_rsk

        config = micro_config(num_cores=2)
        alone = System(config, [program], preload_il1=True, preload_l2=True)
        time_alone = alone.run(observed_cores=[0]).execution_time(0)
        programs = [program, build_rsk(config, 1) if contended else None]
        both = System(config, programs, preload_il1=True, preload_l2=True)
        time_both = both.run(observed_cores=[0]).execution_time(0)
        assert time_both >= time_alone
