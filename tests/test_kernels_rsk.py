"""Unit tests for the rsk / rsk-nop / nop kernel generators."""

from __future__ import annotations

import pytest

from repro.config import reference_config, small_config
from repro.errors import ProgramError
from repro.kernels.rsk import (
    build_bank_conflict_rsk,
    build_nop_kernel,
    build_rsk,
    build_rsk_nop,
    rsk_request_count,
)
from repro.sim.isa import Alu, Load, Nop, Store
from repro.sim.system import System


@pytest.fixture(scope="module")
def ref():
    return reference_config()


class TestBuildRsk:
    def test_body_has_w_plus_one_memory_operations(self, ref):
        program = build_rsk(ref, 0, iterations=10)
        assert program.body_length == ref.dl1.ways + 1
        assert all(isinstance(instr, Load) for instr in program.body)

    def test_store_variant(self, ref):
        program = build_rsk(ref, 0, kind="store", iterations=10)
        assert all(isinstance(instr, Store) for instr in program.body)

    def test_unknown_kind_rejected(self, ref):
        with pytest.raises(ProgramError):
            build_rsk(ref, 0, kind="atomic")

    def test_contender_is_infinite_by_default(self, ref):
        assert build_rsk(ref, 1).is_infinite

    def test_addresses_map_to_one_dl1_set(self, ref):
        program = build_rsk(ref, 0, iterations=1)
        shift = ref.dl1.line_size.bit_length() - 1
        sets = {(instr.addr >> shift) & (ref.dl1.num_sets - 1) for instr in program.body}
        assert len(sets) == 1

    def test_cores_use_disjoint_addresses(self, ref):
        a = build_rsk(ref, 0, iterations=1)
        b = build_rsk(ref, 1, iterations=1)
        assert a.data_lines(32).isdisjoint(b.data_lines(32))
        assert a.base_pc != b.base_pc

    def test_loop_control_overhead_appends_alu(self, ref):
        program = build_rsk(ref, 0, iterations=1, loop_control_overhead=2)
        assert isinstance(program.body[-1], Alu)
        assert program.body[-1].latency == 2

    def test_extra_conflict_lines_must_be_positive(self, ref):
        with pytest.raises(ProgramError):
            build_rsk(ref, 0, extra_conflict_lines=0)

    def test_rsk_always_misses_dl1_and_hits_l2(self, ref):
        """The defining property from Section 2 of the paper."""
        program = build_rsk(ref, 0, iterations=20)
        system = System(ref, [program], preload_il1=True, preload_l2=True)
        result = system.run()
        core = system.cores[0]
        assert core.dl1.stats.read_hits == 0
        assert result.pmc.dram_accesses == 0
        assert result.pmc.core[0].bus_requests == rsk_request_count(program)


class TestBuildRskNop:
    def test_nops_inserted_after_each_memory_operation(self, ref):
        program = build_rsk_nop(ref, 0, k=3, iterations=5)
        memory_ops = ref.dl1.ways + 1
        assert program.body_length == memory_ops * (1 + 3)
        nops = sum(1 for instr in program.body if isinstance(instr, Nop))
        assert nops == memory_ops * 3

    def test_k_zero_reduces_to_plain_rsk_body(self, ref):
        plain = build_rsk(ref, 0, iterations=5)
        with_nop = build_rsk_nop(ref, 0, k=0, iterations=5)
        assert with_nop.body == plain.body

    def test_negative_k_rejected(self, ref):
        with pytest.raises(ProgramError):
            build_rsk_nop(ref, 0, k=-1)

    def test_must_be_finite(self, ref):
        with pytest.raises(ProgramError):
            build_rsk_nop(ref, 0, k=1, iterations=0)

    def test_store_variant_with_nops(self, ref):
        program = build_rsk_nop(ref, 0, kind="store", k=2, iterations=5)
        stores = sum(1 for instr in program.body if isinstance(instr, Store))
        assert stores == ref.dl1.ways + 1

    def test_request_count_independent_of_k(self, ref):
        for k in (0, 1, 10):
            program = build_rsk_nop(ref, 0, k=k, iterations=7)
            assert rsk_request_count(program) == 7 * (ref.dl1.ways + 1)

    def test_name_mentions_k_and_kind(self, ref):
        program = build_rsk_nop(ref, 2, kind="store", k=4, iterations=1)
        assert "store" in program.name
        assert "k=4" in program.name
        assert "core2" in program.name


class TestBuildNopKernel:
    def test_body_is_all_nops(self, ref):
        program = build_nop_kernel(ref, 0, iterations=2)
        assert all(isinstance(instr, Nop) for instr in program.body)

    def test_body_fits_in_il1(self, ref):
        program = build_nop_kernel(ref, 0, iterations=1)
        code_bytes = program.body_length * 4
        assert code_bytes < ref.il1.size_bytes

    def test_fraction_bounds_enforced(self, ref):
        with pytest.raises(ProgramError):
            build_nop_kernel(ref, 0, body_fraction_of_il1=1.5)

    def test_iterations_must_be_positive(self, ref):
        with pytest.raises(ProgramError):
            build_nop_kernel(ref, 0, iterations=0)


class TestRequestCount:
    def test_counts_dynamic_memory_operations(self, ref):
        program = build_rsk(ref, 0, iterations=12)
        assert rsk_request_count(program) == 12 * (ref.dl1.ways + 1)

    def test_infinite_program_rejected(self, ref):
        with pytest.raises(ProgramError):
            rsk_request_count(build_rsk(ref, 0))

    def test_small_platform_kernels_also_valid(self):
        config = small_config()
        program = build_rsk(config, 0, iterations=4)
        assert rsk_request_count(program) == 4 * (config.dl1.ways + 1)


class TestBuildBankConflictRsk:
    def test_addresses_collide_in_dl1_l2_and_one_bank(self, ref):
        from repro.sim.dram import Dram

        program = build_bank_conflict_rsk(ref, 0, iterations=5)
        addresses = [instr.addr for instr in program.body]
        # More lines than DL1 ways and than the core's L2 partition ways.
        assert len(addresses) == max(ref.dl1.ways, len(ref.l2_ways_for_core(0))) + 1
        dl1_sets = {(addr // ref.dl1.line_size) % ref.dl1.num_sets for addr in addresses}
        assert len(dl1_sets) == 1
        l2 = ref.l2.cache
        l2_sets = {(addr // l2.line_size) % l2.num_sets for addr in addresses}
        assert len(l2_sets) == 1
        dram = Dram(ref.dram)
        assert {dram.bank_of(addr) for addr in addresses} == {0}

    def test_every_core_targets_the_same_bank(self, ref):
        from repro.sim.dram import Dram

        dram = Dram(ref.dram)
        banks = set()
        for core in range(ref.num_cores):
            program = build_bank_conflict_rsk(ref, core, iterations=None)
            banks |= {dram.bank_of(instr.addr) for instr in program.body}
        assert banks == {0}

    def test_target_bank_is_respected(self, ref):
        from repro.sim.dram import Dram

        dram = Dram(ref.dram)
        program = build_bank_conflict_rsk(ref, 0, iterations=2, target_bank=2)
        assert {dram.bank_of(instr.addr) for instr in program.body} == {2}

    def test_footprint_must_miss_the_l2(self, ref):
        from repro.kernels.layout import footprint_fits_l2_partition

        program = build_bank_conflict_rsk(ref, 0, iterations=2)
        addresses = [instr.addr for instr in program.body]
        # The whole point: unlike the plain rsk, the footprint does NOT fit
        # the core's partition, so every access reaches the memory stage.
        assert not footprint_fits_l2_partition(ref, addresses)

    def test_invalid_bank_rejected(self, ref):
        with pytest.raises(ProgramError):
            build_bank_conflict_rsk(ref, 0, target_bank=ref.dram.num_banks)

    def test_store_variant_builds(self, ref):
        program = build_bank_conflict_rsk(ref, 1, kind="store", iterations=3)
        assert all(isinstance(instr, Store) for instr in program.body)

    def test_sustained_dram_traffic_and_queue_contention(self):
        """Simulation-level acceptance: on bus_bank_queues the kernel keeps
        missing both cache levels every iteration (sustained DRAM traffic,
        unlike the plain rsk whose lines settle into the L2) and Nc bank
        kernels produce genuine bank-queue waits bounded by the memory
        term."""
        from repro.config import TopologyConfig

        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        iterations = 20
        programs = [
            build_bank_conflict_rsk(config, core, iterations=None)
            for core in range(config.num_cores)
        ]
        programs[0] = build_bank_conflict_rsk(config, 0, iterations=iterations)
        system = System(config, programs, preload_il1=True)
        result = system.run(observed_cores=[0])
        lines_per_iteration = len(programs[0].body)
        # Every load of every iteration reached the DRAM.
        assert result.pmc.core[0].loads == iterations * lines_per_iteration
        assert result.pmc.dram_accesses >= iterations * lines_per_iteration
        stats = system.memctrl.stats
        assert stats.queue_grants > 0
        assert 0 < stats.max_queue_wait <= config.ubd_terms["memory"]


class TestRskRegistry:
    """The resource -> worst-case-stressor registry the measured-bound
    pipeline selects kernels from."""

    def test_built_in_resources_registered(self):
        from repro.kernels.rsk import registered_rsks

        assert registered_rsks() == ("bus", "memory", "bus_response")

    def test_entries_build_the_expected_kernels(self):
        from repro.kernels.rsk import rsk_for_resource

        config = small_config()
        assert rsk_for_resource("bus").build(config, 0, iterations=5).name.startswith("rsk-load")
        assert rsk_for_resource("memory").build(config, 1).name.startswith("rsk-bank")
        assert rsk_for_resource("bus_response").build(config, 2).name.startswith("rsk-response")

    def test_unknown_resource_names_alternatives(self):
        from repro.errors import ConfigurationError
        from repro.kernels.rsk import rsk_for_resource

        with pytest.raises(ConfigurationError, match="bus_response"):
            rsk_for_resource("crossbar")

    def test_duplicate_registration_rejected(self):
        from repro.errors import ConfigurationError
        from repro.kernels.rsk import register_rsk

        with pytest.raises(ConfigurationError):
            register_rsk("bus")(lambda config, core, kind, iterations: None)

    def test_stress_contender_set_covers_other_cores(self):
        from repro.kernels.rsk import build_stress_contender_set

        config = small_config()
        contenders = build_stress_contender_set(config, "memory", scua_core=1)
        assert set(contenders) == {0, 2}
        assert all(program.is_infinite for program in contenders.values())

    def test_stress_contender_set_validates_core(self):
        from repro.errors import MethodologyError
        from repro.kernels.rsk import build_stress_contender_set

        with pytest.raises(MethodologyError):
            build_stress_contender_set(small_config(), "bus", scua_core=7)


class TestBuildResponseConflictRsk:
    def test_every_access_misses_both_cache_levels(self):
        """Both conflict groups exceed the DL1 ways and the core's L2
        partition, so the kernel sustains DRAM traffic like the bank rsk."""
        from repro.kernels.rsk import build_response_conflict_rsk

        config = small_config()
        program = build_response_conflict_rsk(config, 0, iterations=1)
        addresses = [i.addr for i in program.body if isinstance(i, Load)]
        dl1 = config.dl1
        sets = {(addr // dl1.line_size) % dl1.num_sets for addr in addresses}
        # Two conflict groups: the bank-conflict set and its one-line-over
        # partner set.
        assert len(sets) == 2

    def test_per_core_banks_and_period_skew(self):
        from repro.kernels.rsk import build_response_conflict_rsk

        config = small_config()
        lengths = []
        for core in range(config.num_cores):
            program = build_response_conflict_rsk(config, core, iterations=1)
            addresses = [i.addr for i in program.body if isinstance(i, Load)]
            row = config.dram.row_size_bytes
            banks = {(addr // row) % config.dram.num_banks for addr in addresses}
            assert banks == {core % config.dram.num_banks}
            lengths.append(len(program.body))
        # Core c replays c extra addresses: no two cores share a loop period.
        assert lengths == sorted(set(lengths))

    def test_same_row_partner_is_one_line_over(self):
        from repro.kernels.rsk import build_response_conflict_rsk

        config = small_config()
        program = build_response_conflict_rsk(config, 0, iterations=1)
        addresses = [i.addr for i in program.body if isinstance(i, Load)]
        row = config.dram.row_size_bytes
        # The paired accesses land in the same DRAM row.
        assert addresses[1] == addresses[0] + config.line_size
        assert addresses[0] // row == addresses[1] // row

    def test_store_variant_supported(self):
        from repro.kernels.rsk import build_response_conflict_rsk

        program = build_response_conflict_rsk(small_config(), 0, kind="store")
        assert program.is_infinite
        assert all(isinstance(i, Store) for i in program.body)
