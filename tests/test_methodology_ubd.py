"""Unit tests for the rsk-nop methodology (UbdEstimator)."""

from __future__ import annotations

import pytest

from repro.analysis.sawtooth import PeriodEstimate
from repro.config import small_config
from repro.errors import MethodologyError
from repro.methodology.ubd import SweepPoint, UbdEstimator, UbdMethodologyResult


@pytest.fixture(scope="module")
def small_result():
    """Run the full methodology once on the small platform (ubd = 3)."""
    config = small_config()
    estimator = UbdEstimator(config, k_max=8, iterations=20)
    return config, estimator.run()


class TestValidation:
    def test_unknown_instruction_type_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            UbdEstimator(tiny_config, instruction_type="swap")

    def test_explicit_sweep_too_short_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            UbdEstimator(tiny_config, k_values=[1, 2])

    def test_zero_iterations_rejected(self, tiny_config):
        with pytest.raises(MethodologyError):
            UbdEstimator(tiny_config, iterations=0)


class TestSweepPoints:
    def test_measure_point_reports_positive_dbus(self, tiny_config):
        estimator = UbdEstimator(tiny_config, iterations=10)
        point = estimator.measure_point(k=1)
        assert isinstance(point, SweepPoint)
        assert point.dbus > 0
        assert point.contended_time == point.isolation_time + point.dbus
        assert point.bus_utilisation > 0.9

    def test_dbus_periodic_in_k(self, tiny_config):
        """dbus(k) must equal dbus(k + ubd) (Equation 3's premise)."""
        estimator = UbdEstimator(tiny_config, iterations=10)
        ubd = tiny_config.ubd
        first = estimator.measure_point(k=1).dbus
        shifted = estimator.measure_point(k=1 + ubd).dbus
        assert first == shifted

    def test_requests_independent_of_k(self, tiny_config):
        estimator = UbdEstimator(tiny_config, iterations=10)
        assert estimator.measure_point(1).requests == estimator.measure_point(5).requests


class TestFullMethodology:
    def test_recovers_ubd_on_small_platform(self, small_result):
        config, result = small_result
        assert result.ubdm == config.ubd

    def test_delta_nop_measured_as_one(self, small_result):
        _, result = small_result
        assert result.delta_nop.rounded == 1

    def test_confidence_checks_pass(self, small_result):
        _, result = small_result
        assert result.confidence.passed, result.confidence.summary()

    def test_result_exposes_sweep_series(self, small_result):
        _, result = small_result
        assert result.ks == [point.k for point in result.points]
        assert result.dbus_values == [point.dbus for point in result.points]
        assert len(result.ks) >= 2 * result.period.period_k

    def test_summary_mentions_platform_and_value(self, small_result):
        config, result = small_result
        summary = result.summary()
        assert config.name in summary
        assert str(result.ubdm) in summary

    def test_estimator_agreement_reported(self, small_result):
        _, result = small_result
        assert isinstance(result.period, PeriodEstimate)
        assert result.period.agreement >= 0.5


class TestAutoExtension:
    def test_sweep_extends_until_two_periods_covered(self):
        config = small_config()
        estimator = UbdEstimator(config, k_max=4, iterations=15, auto_extend=True)
        result = estimator.run()
        assert result.ubdm == config.ubd
        assert result.ks[-1] >= 2 * config.ubd - 1

    def test_methodology_works_with_more_cores(self):
        """ubd scales with the number of contenders (Equation 1)."""
        from repro.config import CacheConfig, L2Config

        narrow = small_config()
        # A larger L2 keeps every core's rsk footprint inside its (single-way)
        # partition despite the uneven 8-ways / 5-cores split.
        wider = small_config(
            num_cores=5,
            l2=L2Config(
                cache=CacheConfig(size_bytes=32 * 1024, ways=8, line_size=32, hit_latency=2)
            ),
        )
        narrow_result = UbdEstimator(narrow, k_max=14, iterations=12).run()
        wide_result = UbdEstimator(wider, k_max=26, iterations=12).run()
        assert narrow_result.ubdm == narrow.ubd
        assert wide_result.ubdm == wider.ubd
        assert wide_result.ubdm == 2 * narrow_result.ubdm


class TestStoreVariant:
    def test_store_sweep_shows_decreasing_then_zero_slowdown(self, tiny_config):
        """The Figure 7(b) shape on the small platform."""
        estimator = UbdEstimator(
            tiny_config, instruction_type="store", iterations=15, auto_extend=False
        )
        lbus = tiny_config.bus_service_l2_hit
        ks = list(range(1, tiny_config.ubd + lbus + 4))
        points = estimator.sweep(ks)
        values = [point.dbus for point in points]
        assert values[0] > 0
        assert values[-1] == 0
        assert all(a >= b for a, b in zip(values, values[1:]))
