"""Integration tests: the synchrony effect on the paper's platforms (Section 3, Figure 6(b)).

These tests run the actual cycle-level simulator on the ``ref`` and ``var``
NGMP-like configurations and check the quantitative claims of the paper:

* under four rsk the bus saturates and (nearly) every request of the observed
  core suffers the *same* contention delay;
* that plateau equals ``ubd - delta_rsk``: 26 cycles on ``ref`` and 23 on
  ``var`` — both strictly below the true ``ubd`` of 27;
* Equation 2 predicts the measured contention delay for arbitrary injection
  times enforced through rsk-nop kernels.
"""

from __future__ import annotations

import pytest

from repro.analysis.contention import contention_histogram, injection_time_histogram
from repro.analysis.model import gamma_of_delta
from repro.config import reference_config, variant_config
from repro.kernels.rsk import build_rsk, build_rsk_nop
from repro.methodology.experiment import ExperimentRunner


def contended_histogram(config, iterations=100):
    runner = ExperimentRunner(config)
    scua = build_rsk(config, 0, iterations=iterations)
    contended = runner.run_against_rsk(scua, trace=True)
    return contention_histogram(contended.trace, 0), contended


class TestSynchronyPlateau:
    def test_reference_platform_plateau_is_26(self):
        """Figure 6(b), ref bars: ubdm = 26 < ubd = 27."""
        config = reference_config()
        histogram, _ = contended_histogram(config)
        assert histogram.mode == 26
        assert histogram.max_observed == 26
        assert histogram.fraction_at_mode() > 0.95

    def test_variant_platform_plateau_is_23(self):
        """Figure 6(b), var bars: ubdm = 23 < ubd = 27."""
        config = variant_config()
        histogram, _ = contended_histogram(config)
        assert histogram.mode == 23
        assert histogram.max_observed == 23
        assert histogram.fraction_at_mode() > 0.95

    def test_plateau_depends_on_injection_time_not_on_ubd(self):
        """Both platforms share ubd = 27, yet their measured plateaus differ —
        the reason the naive measurement is untrustworthy."""
        ref_histogram, _ = contended_histogram(reference_config())
        var_histogram, _ = contended_histogram(variant_config())
        assert reference_config().ubd == variant_config().ubd
        assert ref_histogram.mode != var_histogram.mode

    def test_bus_is_saturated_during_the_experiment(self):
        _, contended = contended_histogram(reference_config(), iterations=60)
        assert contended.bus_utilisation > 0.99

    def test_rsk_injection_times_equal_dl1_latency(self):
        for config, expected in ((reference_config(), 1), (variant_config(), 4)):
            runner = ExperimentRunner(config)
            scua = build_rsk(config, 0, iterations=60)
            contended = runner.run_against_rsk(scua, trace=True)
            deltas = injection_time_histogram(contended.trace, 0)
            assert max(deltas, key=deltas.get) == expected


class TestEquation2OnSimulator:
    @pytest.mark.parametrize("k", [0, 1, 5, 12, 25, 26, 27, 40, 53, 54])
    def test_gamma_matches_equation2_for_enforced_injection_times(self, k):
        """rsk-nop(k) makes every request suffer gamma(delta_rsk + k) exactly."""
        config = reference_config()
        runner = ExperimentRunner(config)
        scua = build_rsk_nop(config, 0, k=k, iterations=40)
        contended = runner.run_against_rsk(scua, trace=True)
        histogram = contention_histogram(contended.trace, 0)
        delta = config.dl1.hit_latency + k
        assert histogram.mode == gamma_of_delta(delta, config.ubd)
        assert histogram.fraction_at_mode() > 0.9

    def test_variant_platform_also_follows_equation2(self):
        config = variant_config()
        runner = ExperimentRunner(config)
        for k in (0, 3, 10, 23):
            scua = build_rsk_nop(config, 0, k=k, iterations=30)
            contended = runner.run_against_rsk(scua, trace=True)
            histogram = contention_histogram(contended.trace, 0)
            delta = config.dl1.hit_latency + k
            assert histogram.mode == gamma_of_delta(delta, config.ubd)

    def test_per_request_slowdown_equals_modal_gamma(self):
        """Execution-time slowdown per request equals the per-request gamma,
        tying the trace-level and execution-time-level views together."""
        config = reference_config()
        runner = ExperimentRunner(config)
        scua = build_rsk_nop(config, 0, k=7, iterations=50)
        isolation = runner.run_isolation(scua)
        contended = runner.run_against_rsk(scua, trace=True)
        histogram = contention_histogram(contended.trace, 0)
        per_request = contended.slowdown_versus(isolation) / isolation.bus_requests
        assert per_request == pytest.approx(histogram.mode, abs=0.2)
