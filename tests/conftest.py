"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional

import pytest

from repro.config import (
    ArchConfig,
    BusConfig,
    CacheConfig,
    L2Config,
    reference_config,
    small_config,
    variant_config,
)
from repro.sim.isa import Program
from repro.sim.system import System, SystemResult


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files (e.g. the generated-loop sources "
        "under tests/goldens/) instead of comparing against them",
    )


@pytest.fixture
def regen(request: pytest.FixtureRequest) -> bool:
    """True when the run should refresh golden snapshots (``--regen``)."""
    return bool(request.config.getoption("--regen"))


@pytest.fixture
def ref_config() -> ArchConfig:
    """The paper's reference 4-core NGMP-like platform."""
    return reference_config()


@pytest.fixture
def var_config() -> ArchConfig:
    """The paper's variant platform (L1 latency 4)."""
    return variant_config()


@pytest.fixture
def tiny_config() -> ArchConfig:
    """A 2-core platform with a short bus occupancy for fast unit tests."""
    return small_config()


def make_tiny_config(**overrides) -> ArchConfig:
    """Build the small test platform with optional field overrides."""
    return small_config(**overrides)


def run_programs(
    config: ArchConfig,
    programs: List[Optional[Program]],
    observed: Optional[List[int]] = None,
    trace: bool = False,
    **system_kwargs,
) -> SystemResult:
    """Run ``programs`` on ``config`` and return the result (helper for tests)."""
    system = System(config, programs, trace=trace, **system_kwargs)
    return system.run(observed_cores=observed)


def execution_time_of(
    config: ArchConfig,
    program: Program,
    core_id: int = 0,
    **system_kwargs,
) -> int:
    """Execution time of ``program`` running alone on ``core_id``."""
    programs: List[Optional[Program]] = [None] * config.num_cores
    programs[core_id] = program
    result = run_programs(config, programs, observed=[core_id], **system_kwargs)
    return result.execution_time(core_id)
