"""Unit tests for the ASCII table and histogram renderers."""

from __future__ import annotations

import pytest

from repro.report.histogram import render_histogram
from repro.report.tables import render_series, render_table


class TestRenderTable:
    def test_headers_and_rows_present(self):
        text = render_table(["k", "dbus"], [[1, 100], [2, 75]])
        lines = text.splitlines()
        assert "k" in lines[0] and "dbus" in lines[0]
        assert len(lines) == 4  # header + separator + 2 rows

    def test_numeric_cells_right_aligned(self):
        text = render_table(["name", "cycles"], [["rsk", 5], ["rsk-nop", 12345]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("    5")
        assert rows[1].endswith("12345")

    def test_column_width_expands_to_fit(self):
        text = render_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_allowed(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestRenderSeries:
    def test_two_columns(self):
        text = render_series([1, 2], [10, 20], x_label="k", y_label="dbus")
        assert "k" in text and "dbus" in text
        assert "10" in text and "20" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series([1, 2], [1])


class TestRenderHistogram:
    def test_bars_scale_with_counts(self):
        text = render_histogram({0: 10, 1: 5}, label="contenders")
        lines = text.splitlines()
        assert lines[0].count("#") == 50
        assert lines[1].count("#") == 25

    def test_title_printed_first(self):
        text = render_histogram({1: 1}, title="Figure 6(a)")
        assert text.splitlines()[0] == "Figure 6(a)"

    def test_percentages_sum_sensibly(self):
        text = render_histogram({0: 1, 1: 1})
        assert text.count("( 50.0%)") == 2

    def test_empty_histogram(self):
        assert "(empty histogram)" in render_histogram({})

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            render_histogram({0: 1}, width=0)

    def test_values_sorted(self):
        text = render_histogram({3: 1, 0: 1, 2: 1})
        lines = text.splitlines()
        assert lines[0].startswith("value=   0")
        assert lines[-1].startswith("value=   3")
