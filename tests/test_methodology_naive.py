"""Unit tests for the naive det/nr estimator (the prior-art baseline)."""

from __future__ import annotations

import pytest

from repro.errors import MethodologyError
from repro.kernels.rsk import build_rsk
from repro.methodology.naive import NaiveEstimate, NaiveUbdEstimator
from repro.sim.isa import Nop, Program


class TestNaiveEstimator:
    def test_estimate_with_rsk_as_scua(self, tiny_config):
        estimator = NaiveUbdEstimator(tiny_config)
        estimate = estimator.estimate_with_rsk_as_scua(iterations=20)
        assert estimate.requests == 20 * (tiny_config.dl1.ways + 1)
        assert estimate.det == estimate.contended_time - estimate.isolation_time
        assert estimate.ubdm == pytest.approx(estimate.det / estimate.requests)

    def test_naive_estimate_underestimates_true_ubd(self, tiny_config):
        """The paper's core negative result (Sections 3.1/3.2)."""
        estimator = NaiveUbdEstimator(tiny_config)
        estimate = estimator.estimate_with_rsk_as_scua(iterations=30)
        assert estimate.ubdm < tiny_config.ubd
        assert estimate.underestimation_versus(tiny_config.ubd) > 0

    def test_naive_estimate_close_to_ubd_minus_delta_rsk(self, tiny_config):
        """Under the synchrony effect every request sees gamma(delta_rsk)."""
        estimator = NaiveUbdEstimator(tiny_config)
        estimate = estimator.estimate_with_rsk_as_scua(iterations=40)
        expected = tiny_config.ubd - tiny_config.dl1.hit_latency
        assert estimate.ubdm == pytest.approx(expected, abs=0.3)

    def test_reference_platform_naive_value_is_26(self, ref_config):
        """Figure 6(b): the measured plateau on ref is 26, one below ubd = 27."""
        estimator = NaiveUbdEstimator(ref_config)
        estimate = estimator.estimate_with_rsk_as_scua(iterations=40)
        assert estimate.ubdm == pytest.approx(26.0, abs=0.3)

    def test_variant_platform_naive_value_is_23(self, var_config):
        """Figure 6(b): the measured plateau on var is 23."""
        estimator = NaiveUbdEstimator(var_config)
        estimate = estimator.estimate_with_rsk_as_scua(iterations=40)
        assert estimate.ubdm == pytest.approx(23.0, abs=0.3)

    def test_arbitrary_scua_accepted(self, tiny_config):
        estimator = NaiveUbdEstimator(tiny_config)
        scua = build_rsk(tiny_config, 0, iterations=10)
        estimate = estimator.estimate(scua)
        assert isinstance(estimate, NaiveEstimate)
        assert estimate.scua_name == scua.name

    def test_scua_without_bus_requests_rejected(self, tiny_config):
        estimator = NaiveUbdEstimator(tiny_config)
        scua = Program(name="pure-compute", body=(Nop(),), iterations=10)
        with pytest.raises(MethodologyError):
            estimator.estimate(scua)

    def test_naive_depends_on_platform_injection_time(self, ref_config, var_config):
        """The naive value moves with delta_rsk, which is exactly why it is
        not a trustworthy approximation of the (platform-invariant) ubd."""
        ref_estimate = NaiveUbdEstimator(ref_config).estimate_with_rsk_as_scua(iterations=30)
        var_estimate = NaiveUbdEstimator(var_config).estimate_with_rsk_as_scua(iterations=30)
        assert ref_estimate.ubdm > var_estimate.ubdm
