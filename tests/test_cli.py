"""Unit tests for the repro-bounds command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_derive_ubd_defaults(self):
        args = build_parser().parse_args(["derive-ubd"])
        assert args.command == "derive-ubd"
        assert args.preset == "ref"
        assert args.k_max == 60
        assert args.instruction_type == "load"

    def test_preset_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "p4080", "derive-ubd"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synchrony_options(self):
        args = build_parser().parse_args(["--preset", "var", "synchrony", "--iterations", "5"])
        assert args.preset == "var"
        assert args.iterations == 5

    def test_campaign_options(self):
        args = build_parser().parse_args(["campaign", "--workloads", "2", "--seed", "9"])
        assert args.workloads == 2
        assert args.seed == 9


class TestCommands:
    def test_derive_ubd_on_small_preset(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "derive-ubd",
                "--k-max",
                "14",
                "--iterations",
                "15",
                "--show-sweep",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ubdm = 6 cycles" in output
        assert "[PASS] bus_saturation" in output
        assert "dbus" in output

    def test_synchrony_on_small_preset(self, capsys):
        exit_code = main(["--preset", "small", "synchrony", "--iterations", "40"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "analytical ubd = 6" in output
        assert "gamma=" in output

    def test_campaign_on_small_preset(self, capsys):
        exit_code = main(
            ["--preset", "small", "campaign", "--workloads", "2", "--iterations", "5"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "EEMBC-like" in output
        assert "contenders=" in output
