"""Unit tests for the repro-bounds command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_derive_ubd_defaults(self):
        args = build_parser().parse_args(["derive-ubd"])
        assert args.command == "derive-ubd"
        assert args.preset == "ref"
        assert args.k_max == 60
        assert args.instruction_type == "load"

    def test_preset_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--preset", "p4080", "derive-ubd"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synchrony_options(self):
        args = build_parser().parse_args(["--preset", "var", "synchrony", "--iterations", "5"])
        assert args.preset == "var"
        assert args.iterations == 5

    def test_campaign_options(self):
        args = build_parser().parse_args(["campaign", "--workloads", "2", "--seed", "9"])
        assert args.workloads == 2
        assert args.seed == 9
        assert args.jobs == 1
        assert args.out is None
        assert args.cache_dir is None

    def test_campaign_engine_options(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--jobs",
                "4",
                "--out",
                "out/campaign",
                "--cache-dir",
                "out/cache",
                "--arbiter",
                "round_robin",
                "--arbiter",
                "tdma",
                "--contenders",
                "1",
                "--contenders",
                "2",
            ]
        )
        assert args.jobs == 4
        assert args.out == "out/campaign"
        assert args.cache_dir == "out/cache"
        assert args.arbiter == ["round_robin", "tdma"]
        assert args.contenders == [1, 2]

    def test_campaign_arbiter_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--arbiter", "lottery"])

    def test_campaign_topology_axis(self):
        args = build_parser().parse_args(
            [
                "campaign",
                "--topology",
                "bus_only",
                "--topology",
                "bus_bank_queues",
            ]
        )
        assert args.topology == ["bus_only", "bus_bank_queues"]

    def test_topology_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--topology", "mesh"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["derive-ubd", "--topology", "mesh"])

    def test_derive_and_synchrony_accept_topology(self):
        args = build_parser().parse_args(["derive-ubd", "--topology", "bus_bank_queues"])
        assert args.topology == "bus_bank_queues"
        args = build_parser().parse_args(["synchrony", "--topology", "bus_bank_queues"])
        assert args.topology == "bus_bank_queues"

    def test_list_subcommand_parses(self):
        assert build_parser().parse_args(["list"]).command == "list"

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit", "small"])
        assert args.command == "audit"
        assert args.target == "small"
        assert args.topology is None
        assert args.out == "out/audit"
        assert args.k_max == 60
        assert args.synchrony_iterations == 150

    def test_audit_requires_a_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit"])

    def test_audit_topology_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["audit", "small", "--topology", "mesh"])


class TestCommands:
    def test_derive_ubd_on_small_preset(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "derive-ubd",
                "--k-max",
                "14",
                "--iterations",
                "15",
                "--show-sweep",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ubdm = 6 cycles" in output
        assert "[PASS] bus_saturation" in output
        assert "dbus" in output

    def test_synchrony_on_small_preset(self, capsys):
        exit_code = main(["--preset", "small", "synchrony", "--iterations", "40"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "analytical ubd = 6" in output
        assert "gamma=" in output

    def test_campaign_on_small_preset(self, capsys):
        exit_code = main(["--preset", "small", "campaign", "--workloads", "2", "--iterations", "5"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "EEMBC-like" in output
        assert "contenders=" in output

    def test_list_prints_registries(self, capsys):
        exit_code = main(["list"])
        output = capsys.readouterr().out
        assert exit_code == 0
        # The listing is read from the registries themselves, so every
        # registered name must show up.
        from repro.config import ARBITRATION_POLICIES, ENGINES, PRESETS, TOPOLOGIES

        for name in list(PRESETS) + list(ARBITRATION_POLICIES) + list(ENGINES) + list(TOPOLOGIES):
            assert name in output

    def test_campaign_topology_sweep_on_small_preset(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "campaign",
                "--workloads",
                "1",
                "--iterations",
                "4",
                "--topology",
                "bus_only",
                "--topology",
                "bus_bank_queues",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "bus_bank_queues" in output

    def test_synchrony_with_topology_override(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "synchrony",
                "--iterations",
                "30",
                "--topology",
                "bus_bank_queues",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "gamma=" in output

    def test_library_errors_become_clean_cli_errors(self, capsys):
        exit_code = main(["--preset", "small", "campaign", "--workloads", "1", "--jobs", "0"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "jobs must be >= 1" in captured.err
        assert "Traceback" not in captured.err

    def test_campaign_writes_artifacts_and_reuses_cache(self, tmp_path, capsys):
        from repro.campaign import load_campaign

        argv = [
            "--preset",
            "small",
            "campaign",
            "--workloads",
            "2",
            "--iterations",
            "5",
            "--jobs",
            "2",
            "--out",
            str(tmp_path / "campaign"),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "results.jsonl" in cold
        records, summary = load_campaign(tmp_path / "campaign")
        assert len(records) == summary["total_runs"] == 3
        assert summary["timing"]["simulated"] == 3

        assert main(argv) == 0
        _, warm_summary = load_campaign(tmp_path / "campaign")
        assert warm_summary["timing"]["simulated"] == 0
        assert warm_summary["timing"]["cached"] == 3


class TestPerResourceCli:
    def test_derive_ubd_per_resource_on_split_bus(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "derive-ubd",
                "--topology",
                "split_bus",
                "--per-resource",
                "--k-max",
                "14",
                "--iterations",
                "15",
                "--stress-iterations",
                "30",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        # One measured term per resource of the three-stage chain.
        for resource in ("bus", "memory", "bus_response"):
            assert resource in output
        assert "End-to-end measured bound" in output
        assert "Memory term split" in output
        assert "write_burst" in output
        assert "[PASS] bus_saturation" in output

    def test_per_resource_on_bus_only_degenerates_to_bus_term(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "derive-ubd",
                "--per-resource",
                "--k-max",
                "14",
                "--iterations",
                "15",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "rsk-nop saw-tooth" in output
        assert "memory" not in output.split("End-to-end")[0]

    def test_per_resource_refuses_store_traffic(self, capsys):
        exit_code = main(
            [
                "--preset",
                "small",
                "derive-ubd",
                "--topology",
                "bus_bank_queues",
                "--per-resource",
                "--instruction-type",
                "store",
            ]
        )
        assert exit_code == 2
        assert "error:" in capsys.readouterr().err

    def test_synchrony_reports_write_burst_gate(self, capsys):
        exit_code = main(["--preset", "small", "synchrony", "--iterations", "40"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "write_burst" in output


#: The reduced measurement knobs the CI audit job uses.
AUDIT_FAST = [
    "--k-max",
    "14",
    "--iterations",
    "15",
    "--stress-iterations",
    "30",
    "--synchrony-iterations",
    "60",
    "--equivalence-iterations",
    "25",
]


class TestAuditCli:
    def test_audit_preset_exit_code_is_worst_verdict(self, tmp_path, capsys):
        exit_code = main(["audit", "small", "--out", str(tmp_path / "audit")] + AUDIT_FAST)
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "Verdict: pass (exit code 0)" in output
        for dimension in ("measured_bounds", "engine_equivalence", "synchrony"):
            assert dimension in output
        assert (tmp_path / "audit" / "flags.json").exists()
        assert (tmp_path / "audit" / "report.html").exists()

    def test_audit_flagged_topology_exits_one_and_prints_the_warning(self, tmp_path, capsys):
        exit_code = main(
            [
                "audit",
                "small",
                "--topology",
                "bus_bank_queues",
                "--out",
                str(tmp_path / "audit"),
            ]
            + AUDIT_FAST
        )
        output = capsys.readouterr().out
        assert exit_code == 1
        assert "Verdict: warn (exit code 1)" in output
        assert "[WARN] write_burst/store_probe" in output

    def test_audit_campaign_directory(self, tmp_path, capsys):
        campaign_dir = tmp_path / "campaign"
        campaign_argv = [
            "--preset",
            "small",
            "campaign",
            "--workloads",
            "2",
            "--iterations",
            "5",
            "--out",
            str(campaign_dir),
        ]
        assert main(campaign_argv) == 0
        capsys.readouterr()
        exit_code = main(["audit", str(campaign_dir), "--out", str(tmp_path / "audit")])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "artifact_schema" in output
        assert "campaign_bounds" in output
        assert (tmp_path / "audit" / "flags.json").exists()

    def test_audit_unresolvable_target_is_a_clean_error(self, capsys):
        exit_code = main(["audit", "nonsense"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "cannot resolve audit target" in captured.err
        assert "Traceback" not in captured.err


class TestStoreCli:
    def _campaign_argv(self, store_dir, out_dir=None, workloads="2"):
        argv = [
            "--preset",
            "small",
            "campaign",
            "--workloads",
            workloads,
            "--iterations",
            "5",
            "--store",
            str(store_dir),
        ]
        if out_dir is not None:
            argv += ["--out", str(out_dir)]
        return argv

    def test_campaign_store_options_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--store", "out/store", "--shard-size", "8"]
        )
        assert args.store == "out/store"
        assert args.shard_size == 8
        assert args.cache_dir is None

    def test_cache_subcommands_parse(self):
        stats = build_parser().parse_args(["cache", "stats", "--store", "s"])
        assert stats.command == "cache" and stats.cache_command == "stats"
        migrate = build_parser().parse_args(
            ["cache", "migrate", "--store", "s", "--legacy", "l"]
        )
        assert migrate.legacy == "l"
        gc = build_parser().parse_args(["cache", "gc", "--store", "s", "--keep-days", "30"])
        assert gc.keep_days == 30.0
        with pytest.raises(SystemExit):  # --store is required
            build_parser().parse_args(["cache", "stats"])

    def test_store_and_cache_dir_are_mutually_exclusive(self, tmp_path, capsys):
        argv = self._campaign_argv(tmp_path / "store")
        argv += ["--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_store_backed_campaign_warm_rerun_simulates_nothing(self, tmp_path, capsys):
        from repro.campaign import load_campaign, load_manifest

        argv = self._campaign_argv(tmp_path / "store", out_dir=tmp_path / "campaign")
        assert main(argv) == 0
        assert "campaign.json" in capsys.readouterr().out
        records, summary = load_campaign(tmp_path / "campaign")
        assert summary["timing"]["simulated"] == len(records) == 3
        manifest = load_manifest(tmp_path / "campaign")
        assert manifest["completed"] is True
        assert manifest["total_runs"] == 3

        assert main(argv) == 0
        capsys.readouterr()
        _, warm_summary = load_campaign(tmp_path / "campaign")
        assert warm_summary["timing"]["simulated"] == 0
        assert warm_summary["timing"]["cached"] == 3

    def test_overlapping_campaign_only_simulates_its_frontier(self, tmp_path, capsys):
        from repro.campaign import load_campaign

        store = tmp_path / "store"
        assert main(self._campaign_argv(store, workloads="1")) == 0
        argv = self._campaign_argv(store, out_dir=tmp_path / "grown", workloads="2")
        assert main(argv) == 0
        capsys.readouterr()
        _, summary = load_campaign(tmp_path / "grown")
        assert summary["timing"]["simulated"] == 1  # only the new workload
        assert summary["timing"]["cached"] == 2

    def test_cache_stats_reports_entries_and_attribution(self, tmp_path, capsys):
        assert main(self._campaign_argv(tmp_path / "store")) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--store", str(tmp_path / "store")]) == 0
        output = capsys.readouterr().out
        assert "Entries: 3" in output
        assert "Per-campaign attribution" in output

    def test_cache_stats_on_non_store_is_a_clean_error(self, tmp_path, capsys):
        assert main(["cache", "stats", "--store", str(tmp_path / "empty")]) == 2
        err = capsys.readouterr().err
        assert "not a result store" in err
        assert "Traceback" not in err

    def test_cache_migrate_adopts_a_flat_cache(self, tmp_path, capsys):
        flat_argv = [
            "--preset",
            "small",
            "campaign",
            "--workloads",
            "2",
            "--iterations",
            "5",
            "--cache-dir",
            str(tmp_path / "flat"),
        ]
        assert main(flat_argv) == 0
        capsys.readouterr()
        code = main(
            [
                "cache",
                "migrate",
                "--store",
                str(tmp_path / "store"),
                "--legacy",
                str(tmp_path / "flat"),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Migrated 3 record(s)" in output
        # The migrated store now feeds a fully warm campaign.
        assert main(self._campaign_argv(tmp_path / "store", out_dir=tmp_path / "c")) == 0
        capsys.readouterr()
        from repro.campaign import load_campaign

        _, summary = load_campaign(tmp_path / "c")
        assert summary["timing"]["simulated"] == 0

    def test_cache_migrate_missing_legacy_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            [
                "cache",
                "migrate",
                "--store",
                str(tmp_path / "store"),
                "--legacy",
                str(tmp_path / "nope"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_cache_gc_removes_nothing_on_a_fresh_store(self, tmp_path, capsys):
        assert main(self._campaign_argv(tmp_path / "store")) == 0
        capsys.readouterr()
        code = main(
            ["cache", "gc", "--store", str(tmp_path / "store"), "--keep-days", "30"]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "Removed 0 entries" in output
        assert "3 remain" in output


class TestCacheJsonAndClaims:
    def _seed_store(self, tmp_path):
        from repro.campaign import ResultStore

        store_dir = tmp_path / "store"
        with ResultStore(store_dir, campaign_id="seed") as store:
            store.put_many(
                [(f"{i:064x}", {"digest": f"{i:064x}", "schema": 4}) for i in range(3)]
            )
        return store_dir

    def test_cache_stats_json(self, tmp_path, capsys):
        import json

        store_dir = self._seed_store(tmp_path)
        assert main(["cache", "stats", "--store", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 3
        assert payload["campaigns"] == {"seed": 3}
        assert payload["active_claims"] == {}

    def test_cache_gc_json(self, tmp_path, capsys):
        import json

        store_dir = self._seed_store(tmp_path)
        assert main(
            ["cache", "gc", "--store", str(store_dir), "--keep-days", "365", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {
            "removed": 0,
            "skipped_in_use": 0,
            "in_use_campaigns": [],
            "traces_removed": 0,
        }

    def test_cache_gc_reports_claimed_rows_as_in_use(self, tmp_path, capsys):
        import repro.campaign.store as store_module
        from repro.campaign import ResultStore

        store_dir = self._seed_store(tmp_path)
        with ResultStore(store_dir) as store:
            store._db.execute(
                "UPDATE runs SET created_at = ?", (store_module.time.time() - 7 * 86400,)
            )
            store._db.commit()
            store.claim("seed")  # this (live) pid holds the campaign in use
        assert main(["cache", "gc", "--store", str(store_dir), "--keep-days", "1"]) == 0
        out = capsys.readouterr().out
        assert "Removed 0" in out
        assert "Skipped 3 in-use entries (claimed by: seed)" in out
        # The claim also shows up in human-readable stats.
        assert main(["cache", "stats", "--store", str(store_dir)]) == 0
        assert "Active claims" in capsys.readouterr().out
