"""Unit tests for contention / contender histograms (Figure 6 analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.contention import (
    ContenderHistogram,
    ContentionHistogram,
    contender_histogram,
    contention_histogram,
    injection_time_histogram,
)
from repro.errors import AnalysisError
from repro.sim.trace import RequestRecord, TraceRecorder


def make_trace(records) -> TraceRecorder:
    trace = TraceRecorder(enabled=True)
    for record in records:
        trace.record(record)
    return trace


def load_record(port=0, ready=0, grant=None, contenders=0, kind="load"):
    grant = ready if grant is None else grant
    return RequestRecord(
        port=port,
        kind=kind,
        addr=0x100,
        ready_cycle=ready,
        grant_cycle=grant,
        complete_cycle=grant + 9,
        service_cycles=9,
        contenders_at_ready=contenders,
    )


class TestContentionHistogram:
    def test_histogram_counts_delays(self):
        trace = make_trace(
            [
                load_record(ready=0, grant=0),      # skipped (first request)
                load_record(ready=10, grant=36),    # delay 26
                load_record(ready=46, grant=72),    # delay 26
                load_record(ready=82, grant=85),    # delay 3
            ]
        )
        histogram = contention_histogram(trace, 0)
        assert histogram.counts == {26: 2, 3: 1}
        assert histogram.total_requests == 3
        assert histogram.mode == 26
        assert histogram.max_observed == 26

    def test_fraction_helpers(self):
        trace = make_trace(
            [load_record(ready=0, grant=0)]
            + [load_record(ready=10 * i, grant=10 * i + 5) for i in range(1, 5)]
        )
        histogram = contention_histogram(trace, 0)
        assert histogram.fraction_at(5) == 1.0
        assert histogram.fraction_at_mode() == 1.0
        assert histogram.fraction_at(99) == 0.0

    def test_skip_first_can_be_disabled(self):
        trace = make_trace([load_record(ready=0, grant=7)])
        histogram = contention_histogram(trace, 0, skip_first=0)
        assert histogram.counts == {7: 1}

    def test_kind_filter(self):
        trace = make_trace(
            [
                load_record(kind="store", ready=0, grant=3),
                load_record(kind="store", ready=10, grant=11),
            ]
        )
        histogram = contention_histogram(trace, 0, kinds=("store",), skip_first=0)
        assert histogram.total_requests == 2

    def test_missing_port_raises(self):
        trace = make_trace([load_record(port=1)])
        with pytest.raises(AnalysisError):
            contention_histogram(trace, 0)

    def test_empty_histogram_properties(self):
        histogram = ContentionHistogram(counts={}, total_requests=0, observed_core=0)
        assert histogram.max_observed == 0
        assert histogram.mode == 0
        assert histogram.fraction_at_mode() == 0.0


class TestContenderHistogram:
    def test_counts_and_fractions(self):
        trace = make_trace(
            [
                load_record(contenders=0),
                load_record(ready=10, contenders=1),
                load_record(ready=20, contenders=1),
                load_record(ready=30, contenders=3),
            ]
        )
        histogram = contender_histogram(trace, 0, num_cores=4)
        assert histogram.counts == {0: 1, 1: 2, 3: 1}
        assert histogram.fraction_with(1) == pytest.approx(0.5)
        assert histogram.fraction_with_at_most(1) == pytest.approx(0.75)

    def test_all_kinds_included_by_default(self):
        trace = make_trace(
            [
                load_record(kind="load", contenders=2),
                load_record(kind="store", ready=5, contenders=2),
                load_record(kind="ifetch", ready=9, contenders=2),
            ]
        )
        histogram = contender_histogram(trace, 0, num_cores=4)
        assert histogram.total_requests == 3

    def test_missing_port_raises(self):
        trace = make_trace([load_record(port=2)])
        with pytest.raises(AnalysisError):
            contender_histogram(trace, 0, num_cores=4)

    def test_sorted_items(self):
        histogram = ContenderHistogram(
            counts={3: 1, 0: 5}, total_requests=6, observed_core=0, num_cores=4
        )
        assert histogram.as_sorted_items() == [(0, 5), (3, 1)]

    def test_empty_fractions_are_zero(self):
        histogram = ContenderHistogram(
            counts={}, total_requests=0, observed_core=0, num_cores=4
        )
        assert histogram.fraction_with(0) == 0.0
        assert histogram.fraction_with_at_most(3) == 0.0


class TestInjectionHistogram:
    def test_histogram_of_deltas(self):
        trace = make_trace(
            [
                load_record(ready=0, grant=0),
                load_record(ready=10, grant=10),   # delta = 10 - 9 = 1
                load_record(ready=20, grant=20),   # delta = 20 - 19 = 1
                load_record(ready=33, grant=33),   # delta = 33 - 29 = 4
            ]
        )
        assert injection_time_histogram(trace, 0) == {1: 2, 4: 1}

    def test_single_request_raises(self):
        trace = make_trace([load_record()])
        with pytest.raises(AnalysisError):
            injection_time_histogram(trace, 0)
