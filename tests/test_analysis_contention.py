"""Unit tests for contention / contender histograms (Figure 6 analysis)."""

from __future__ import annotations

import pytest

from repro.analysis.contention import (
    DECOMPOSITION_STAGES,
    ContenderHistogram,
    ContentionHistogram,
    LatencyDecomposition,
    contender_histogram,
    contention_histogram,
    injection_time_histogram,
    latency_decomposition,
)
from repro.errors import AnalysisError
from repro.sim.trace import RequestRecord, TraceRecorder


def make_trace(records) -> TraceRecorder:
    trace = TraceRecorder(enabled=True)
    for record in records:
        trace.record(record)
    return trace


def load_record(port=0, ready=0, grant=None, contenders=0, kind="load"):
    grant = ready if grant is None else grant
    return RequestRecord(
        port=port,
        kind=kind,
        addr=0x100,
        ready_cycle=ready,
        grant_cycle=grant,
        complete_cycle=grant + 9,
        service_cycles=9,
        contenders_at_ready=contenders,
    )


class TestContentionHistogram:
    def test_histogram_counts_delays(self):
        trace = make_trace(
            [
                load_record(ready=0, grant=0),      # skipped (first request)
                load_record(ready=10, grant=36),    # delay 26
                load_record(ready=46, grant=72),    # delay 26
                load_record(ready=82, grant=85),    # delay 3
            ]
        )
        histogram = contention_histogram(trace, 0)
        assert histogram.counts == {26: 2, 3: 1}
        assert histogram.total_requests == 3
        assert histogram.mode == 26
        assert histogram.max_observed == 26

    def test_fraction_helpers(self):
        trace = make_trace(
            [load_record(ready=0, grant=0)]
            + [load_record(ready=10 * i, grant=10 * i + 5) for i in range(1, 5)]
        )
        histogram = contention_histogram(trace, 0)
        assert histogram.fraction_at(5) == 1.0
        assert histogram.fraction_at_mode() == 1.0
        assert histogram.fraction_at(99) == 0.0

    def test_skip_first_can_be_disabled(self):
        trace = make_trace([load_record(ready=0, grant=7)])
        histogram = contention_histogram(trace, 0, skip_first=0)
        assert histogram.counts == {7: 1}

    def test_kind_filter(self):
        trace = make_trace(
            [
                load_record(kind="store", ready=0, grant=3),
                load_record(kind="store", ready=10, grant=11),
            ]
        )
        histogram = contention_histogram(trace, 0, kinds=("store",), skip_first=0)
        assert histogram.total_requests == 2

    def test_missing_port_raises(self):
        trace = make_trace([load_record(port=1)])
        with pytest.raises(AnalysisError):
            contention_histogram(trace, 0)

    def test_empty_histogram_properties(self):
        histogram = ContentionHistogram(counts={}, total_requests=0, observed_core=0)
        assert histogram.max_observed == 0
        assert histogram.mode == 0
        assert histogram.fraction_at_mode() == 0.0


class TestContenderHistogram:
    def test_counts_and_fractions(self):
        trace = make_trace(
            [
                load_record(contenders=0),
                load_record(ready=10, contenders=1),
                load_record(ready=20, contenders=1),
                load_record(ready=30, contenders=3),
            ]
        )
        histogram = contender_histogram(trace, 0, num_cores=4)
        assert histogram.counts == {0: 1, 1: 2, 3: 1}
        assert histogram.fraction_with(1) == pytest.approx(0.5)
        assert histogram.fraction_with_at_most(1) == pytest.approx(0.75)

    def test_all_kinds_included_by_default(self):
        trace = make_trace(
            [
                load_record(kind="load", contenders=2),
                load_record(kind="store", ready=5, contenders=2),
                load_record(kind="ifetch", ready=9, contenders=2),
            ]
        )
        histogram = contender_histogram(trace, 0, num_cores=4)
        assert histogram.total_requests == 3

    def test_missing_port_raises(self):
        trace = make_trace([load_record(port=2)])
        with pytest.raises(AnalysisError):
            contender_histogram(trace, 0, num_cores=4)

    def test_sorted_items(self):
        histogram = ContenderHistogram(
            counts={3: 1, 0: 5}, total_requests=6, observed_core=0, num_cores=4
        )
        assert histogram.as_sorted_items() == [(0, 5), (3, 1)]

    def test_empty_fractions_are_zero(self):
        histogram = ContenderHistogram(counts={}, total_requests=0, observed_core=0, num_cores=4)
        assert histogram.fraction_with(0) == 0.0
        assert histogram.fraction_with_at_most(3) == 0.0


class TestInjectionHistogram:
    def test_histogram_of_deltas(self):
        trace = make_trace(
            [
                load_record(ready=0, grant=0),
                load_record(ready=10, grant=10),   # delta = 10 - 9 = 1
                load_record(ready=20, grant=20),   # delta = 20 - 19 = 1
                load_record(ready=33, grant=33),   # delta = 33 - 29 = 4
            ]
        )
        assert injection_time_histogram(trace, 0) == {1: 2, 4: 1}

    def test_single_request_raises(self):
        trace = make_trace([load_record()])
        with pytest.raises(AnalysisError):
            injection_time_histogram(trace, 0)


def miss_record(
    port=0,
    ready=0,
    grant=None,
    mem_ready=None,
    mem_grant=None,
    mem_complete=None,
    response_ready=None,
    response_grant=None,
):
    """A demand load that missed the L2: full per-stage timestamps."""
    record = load_record(port=port, ready=ready, grant=grant)
    record.mem_ready_cycle = record.complete_cycle if mem_ready is None else mem_ready
    record.mem_grant_cycle = (record.mem_ready_cycle if mem_grant is None else mem_grant)
    record.mem_complete_cycle = (
        record.mem_grant_cycle + 15 if mem_complete is None else mem_complete
    )
    record.response_ready_cycle = (
        record.mem_complete_cycle if response_ready is None else response_ready
    )
    record.response_grant_cycle = (
        record.response_ready_cycle if response_grant is None else response_grant
    )
    record.response_complete_cycle = record.response_grant_cycle + 3
    return record


class TestLatencyDecomposition:
    def test_stages_attributed_per_request(self):
        hit = load_record(ready=0, grant=4)  # 4 cycles of bus wait, no miss
        miss = miss_record(ready=20, grant=26)
        miss.mem_grant_cycle = miss.mem_ready_cycle + 7   # bank-queue wait 7
        miss.mem_complete_cycle = miss.mem_grant_cycle + 15  # DRAM service 15
        miss.response_ready_cycle = miss.mem_complete_cycle
        miss.response_grant_cycle = miss.response_ready_cycle + 2  # response wait 2
        decomposition = latency_decomposition(make_trace([hit, miss]), 0)
        assert decomposition.total_requests == 2
        assert decomposition.memory_requests == 1
        assert decomposition.histograms["bus"] == {4: 1, 6: 1}
        assert decomposition.histograms["memory"] == {7: 1}
        assert decomposition.histograms["dram"] == {15: 1}
        assert decomposition.histograms["bus_response"] == {2: 1}
        assert decomposition.totals == {
            "bus": 10,
            "memory": 7,
            "dram": 15,
            "bus_response": 2,
        }
        assert decomposition.max_observed("memory") == 7
        assert decomposition.mean_observed("bus") == 5.0

    def test_stage_names_align_with_ubd_terms(self):
        from repro.config import get_preset

        terms = set(get_preset("split_bus").ubd_terms)
        # Every analytical term has a measured histogram to check against
        # ("dram" is the service time the memory term's row-miss services
        # bound jointly with the queue wait).
        assert terms <= set(DECOMPOSITION_STAGES)

    def test_l2_hits_only_populate_the_bus_stage(self):
        decomposition = latency_decomposition(
            make_trace([load_record(grant=3), load_record(ready=9, grant=9)]), 0
        )
        assert decomposition.memory_requests == 0
        assert decomposition.histograms["memory"] == {}
        assert decomposition.histograms["bus_response"] == {}
        assert decomposition.totals["dram"] == 0

    def test_other_cores_requests_excluded(self):
        mine = load_record(port=0, grant=2)
        theirs = load_record(port=1, grant=9)
        decomposition = latency_decomposition(make_trace([mine, theirs]), 0)
        assert decomposition.total_requests == 1
        assert decomposition.histograms["bus"] == {2: 1}

    def test_empty_trace_raises(self):
        with pytest.raises(AnalysisError):
            latency_decomposition(make_trace([]), 0)

    def test_skip_first_drops_the_lock_in_request(self):
        decomposition = latency_decomposition(
            make_trace([load_record(grant=0), load_record(ready=9, grant=14)]),
            0,
            skip_first=1,
        )
        assert decomposition.total_requests == 1
        assert decomposition.histograms["bus"] == {5: 1}

    def test_simulation_totals_cross_check_memctrl_stats(self):
        """End to end on the chained topology: when the observed core is the
        only source of memory traffic, the per-request bank-queue waits must
        sum to exactly the controller's aggregate queue counters."""
        from repro.config import TopologyConfig, small_config
        from repro.kernels.rsk import build_bank_conflict_rsk
        from repro.sim.system import System

        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        programs = [None] * config.num_cores
        programs[0] = build_bank_conflict_rsk(config, 0, iterations=25)
        system = System(config, programs, trace=True, preload_il1=True)
        result = system.run(observed_cores=[0])
        decomposition = latency_decomposition(result.trace, 0)
        assert decomposition.memory_requests == result.pmc.dram_accesses
        assert decomposition.consistent_with(system.memctrl.stats)
        # Load-only single-core traffic: the subset inequality behind
        # consistent_with collapses to exact equality here.
        assert decomposition.totals["memory"] == system.memctrl.stats.total_queue_wait
        # DRAM service is bounded by the row-miss latency per access.
        assert decomposition.max_observed("dram") <= config.dram.row_miss_latency


class TestMemoryTermSplit:
    def test_split_reads_queue_and_service_histograms(self):
        from repro.analysis.contention import memory_term_split

        decomposition = LatencyDecomposition(
            observed_core=0,
            total_requests=4,
            memory_requests=3,
            histograms={
                "bus": {2: 4},
                "memory": {10: 2, 30: 1},
                "dram": {15: 1, 33: 2},
                "bus_response": {0: 3},
            },
            totals={"bus": 8, "memory": 50, "dram": 81, "bus_response": 0},
        )
        split = memory_term_split(decomposition)
        assert split.memory_requests == 3
        assert split.queue_wait_max == 30
        assert split.queue_wait_total == 50
        assert split.service_max == 33
        assert split.service_total == 81
        assert split.queue_wait_mean == pytest.approx(50 / 3)
        assert split.service_mean == pytest.approx(81 / 3)
        assert "queue wait max 30" in split.summary()

    def test_empty_stages_split_to_zero(self):
        from repro.analysis.contention import memory_term_split

        decomposition = LatencyDecomposition(
            observed_core=0,
            total_requests=2,
            memory_requests=0,
            histograms={"bus": {1: 2}},
            totals={"bus": 2},
        )
        split = memory_term_split(decomposition)
        assert split.queue_wait_max == 0
        assert split.service_max == 0
        assert split.queue_wait_total == 0


class TestCrossCheckStageBounds:
    def test_sandwich_passes_when_measured_between(self):
        from repro.analysis.contention import cross_check_stage_bounds

        result = cross_check_stage_bounds(
            observed={"bus": 5, "memory": 60},
            measured={"bus": 6, "memory": 61},
            analytical={"bus": 6, "memory": 84},
        )
        assert result.passed
        assert [c.resource for c in result.checks] == ["bus", "memory"]
        assert "OK" in result.summary()

    def test_not_covering_fails(self):
        from repro.analysis.contention import cross_check_stage_bounds

        result = cross_check_stage_bounds(
            observed={"bus": 9}, measured={"bus": 6}, analytical={"bus": 10}
        )
        assert not result.passed
        (check,) = result.failed_checks()
        assert not check.covers_observation
        assert check.within_envelope
        assert "NOT COVERING" in check.summary()

    def test_exceeding_envelope_fails(self):
        from repro.analysis.contention import cross_check_stage_bounds

        result = cross_check_stage_bounds(
            observed={"bus": 5}, measured={"bus": 12}, analytical={"bus": 10}
        )
        assert not result.passed
        (check,) = result.failed_checks()
        assert check.covers_observation
        assert not check.within_envelope
        assert "EXCEEDS ENVELOPE" in check.summary()

    def test_unobserved_stage_defaults_to_zero(self):
        from repro.analysis.contention import cross_check_stage_bounds

        result = cross_check_stage_bounds(
            observed={}, measured={"bus_response": 1}, analytical={"bus_response": 2}
        )
        assert result.passed
        assert result.checks[0].observed_worst_case == 0

    def test_measured_term_without_analytical_counterpart_rejected(self):
        from repro.analysis.contention import cross_check_stage_bounds

        with pytest.raises(AnalysisError):
            cross_check_stage_bounds(observed={}, measured={"crossbar": 3}, analytical={"bus": 6})
