"""Trace-capture/replay machinery tests: keys, cache, store backing, fallback.

The cycle-exactness of the ``replay`` engine is covered by the four-way
differential in ``test_engine_equivalence.py``; this module tests the
machinery around it:

* the core-side digest — :func:`core_side_key` and :func:`trace_key` hit
  across every interconnect/arbiter/engine change and miss on any
  kernel/cache/core-parameter change (the property the arbiter-sweep
  speedup rests on), exercised both directed and as a hypothesis property
  mirroring the codegen compile-cache test;
* the serialised :class:`CoreTrace` payload — round-trips exactly, stale
  schema stamps raise (and the cache treats them as misses, not data);
* the static safety screen — :func:`replay_blocker` rejects stores;
* the :class:`TraceCache` — LRU eviction, counters, negative entries, and
  the :class:`ResultStore` trace section backing it (persist, cross-cache
  hit, ``trace_stats``, gc by age);
* the :class:`ReplayEngine` — per-core fallback reasons while the run
  still completes with the oracle's observable state;
* the bench/compare surface — ``replay_spec`` is a trace-safe pure-rsk
  grid, and gating a metric absent from an older-schema baseline warns
  instead of raising ``KeyError``.
"""

from __future__ import annotations

import os
from typing import List, Optional

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.store import ResultStore
from repro.config import BusConfig, CacheConfig, L2Config, TopologyConfig, small_config
from repro.errors import SimulationError
from repro.kernels.rsk import build_rsk
from repro.bench.campaign_bench import CAMPAIGN_WORKLOADS
from repro.bench.compare import compare_payloads
from repro.sim.core import Core
from repro.sim.isa import Program
from repro.sim.system import System
from repro.sim.trace import (
    CoreTrace,
    ReplayCore,
    ReplayEngine,
    TraceCache,
    TraceStep,
    TraceUnsafe,
    clear_trace_cache,
    core_side_key,
    core_side_payload,
    global_trace_cache,
    replay_blocker,
    trace_key,
    TRACE_SCHEMA_VERSION,
)


@pytest.fixture(autouse=True)
def _isolated_trace_cache():
    """Every test starts and ends with an empty process-wide trace cache."""
    clear_trace_cache()
    yield
    clear_trace_cache()


def _programs_for(config, kind="load", iterations=30):
    scua = build_rsk(config, 0, kind=kind, iterations=iterations)
    programs: List[Optional[Program]] = [None] * config.num_cores
    programs[0] = scua
    return programs


def _capture_one_trace(config=None) -> CoreTrace:
    """Run the replay engine cold once and return the captured trace."""
    config = config or small_config()
    system = System(config, _programs_for(config))
    system.run(observed_cores=[0], engine="replay")
    cache = global_trace_cache()
    assert cache.counters["captures"] == 1
    (entry,) = list(cache._entries.values())
    assert isinstance(entry, CoreTrace)
    return entry


# --------------------------------------------------------------------------- #
# Core-side digests.
# --------------------------------------------------------------------------- #


class TestCoreSideKey:
    def test_system_side_changes_share_a_key(self):
        """Interconnect, arbiter, memory, topology, engine and cosmetic
        fields are all stripped: an arbiter/topology sweep is one key."""
        base = small_config()
        for overrides in (
            {"bus": BusConfig(arbitration="tdma", transfer_latency=7, tdma_slot=11)},
            {"topology": TopologyConfig(name="split_bus")},
            {"engine": "codegen"},
            {"name": "renamed"},
            {"freq_mhz": 1000},
        ):
            variant = base.with_overrides(**overrides)
            assert core_side_key(variant) == core_side_key(base), overrides

    @pytest.mark.parametrize(
        "overrides",
        [
            {"il1": CacheConfig(size_bytes=2048, ways=2, hit_latency=1)},
            {"dl1": CacheConfig(size_bytes=1024, ways=2, hit_latency=3)},
            {"l2": L2Config(cache=CacheConfig(size_bytes=4096, ways=4, hit_latency=2))},
            {"num_cores": 4},
            {"alu_latency": 2},
            {"nop_latency": 2},
        ],
    )
    def test_core_side_changes_miss(self, overrides):
        """Anything that can change the demand-request sequence changes
        the key: private caches, the (live) L2 geometry, execute-stage
        latencies and the core count."""
        base = small_config()
        assert core_side_key(base.with_overrides(**overrides)) != core_side_key(base)

    def test_trace_key_depends_on_program_and_preloads(self):
        config = small_config()
        short = build_rsk(config, 0, kind="load", iterations=10)
        long = build_rsk(config, 0, kind="load", iterations=20)
        key = trace_key(config, short, False, False)
        assert trace_key(config, long, False, False) != key
        assert trace_key(config, short, True, False) != key
        assert trace_key(config, short, False, True) != key
        assert trace_key(config.with_overrides(engine="replay"), short, False, False) == key

    @settings(max_examples=60, deadline=None)
    @given(
        a_hit=st.integers(min_value=1, max_value=3),
        a_transfer=st.integers(min_value=1, max_value=4),
        a_topology=st.sampled_from(["bus_only", "split_bus"]),
        a_engine=st.sampled_from(["event", "codegen", "replay"]),
        b_hit=st.integers(min_value=1, max_value=3),
        b_transfer=st.integers(min_value=1, max_value=4),
        b_topology=st.sampled_from(["bus_only", "split_bus"]),
        b_engine=st.sampled_from(["event", "codegen", "replay"]),
    )
    def test_keys_collide_iff_core_side_payloads_are_equal(
        self, a_hit, a_transfer, a_topology, a_engine, b_hit, b_transfer, b_topology, b_engine
    ):
        """The digest property, mirroring the codegen compile-cache test:
        equal keys exactly when the configurations agree on every
        core-side field, however the system side differs."""

        def build(hit, transfer, topology, engine):
            return small_config(
                dl1=CacheConfig(size_bytes=1024, ways=2, hit_latency=hit),
                bus=BusConfig(transfer_latency=transfer),
                topology=TopologyConfig(name=topology),
                engine=engine,
            )

        a = build(a_hit, a_transfer, a_topology, a_engine)
        b = build(b_hit, b_transfer, b_topology, b_engine)
        assert (core_side_key(a) == core_side_key(b)) == (
            core_side_payload(a) == core_side_payload(b)
        )


# --------------------------------------------------------------------------- #
# Static safety screen and the captured payload.
# --------------------------------------------------------------------------- #


class TestSafetyAndPayload:
    def test_stores_are_never_trace_safe(self):
        config = small_config()
        store_kernel = build_rsk(config, 0, kind="store", iterations=10)
        reason = replay_blocker(store_kernel)
        assert reason is not None and "store" in reason
        assert replay_blocker(build_rsk(config, 0, kind="load", iterations=10)) is None

    def test_retire_counts_summarise_the_segment(self):
        step = TraceStep(
            gap=5,
            kind="load",
            addr=64,
            retirements=((0, "load"), (1, "nop"), (2, "alu"), (3, "store"), (4, "nop")),
        )
        assert step.retire_counts == (5, 1, 1, 2)

    def test_payload_round_trips_exactly(self):
        trace = _capture_one_trace()
        rebuilt = CoreTrace.from_payload(trace.to_payload())
        assert rebuilt == trace

    def test_stale_schema_raises(self):
        trace = _capture_one_trace()
        payload = trace.to_payload()
        payload["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(SimulationError):
            CoreTrace.from_payload(payload)

    def test_stale_store_payload_is_a_miss(self, tmp_path):
        """A schema-bumped on-disk trace must be ignored, never misread."""
        trace = _capture_one_trace()
        stale = trace.to_payload()
        stale["schema"] = TRACE_SCHEMA_VERSION + 1
        with ResultStore(tmp_path / "store") as store:
            store.put_trace(trace.key, stale)
            cache = TraceCache()
            cache.attach_store(store)
            assert cache.get(trace.key) is None
            assert cache.counters["misses"] == 1
            assert cache.counters["store_hits"] == 0


# --------------------------------------------------------------------------- #
# The trace cache and its store backing.
# --------------------------------------------------------------------------- #


class TestTraceCache:
    def test_lru_evicts_the_coldest_entry(self):
        cache = TraceCache(max_entries=2)
        for index in range(3):
            cache._insert(f"k{index}", TraceUnsafe(f"r{index}"))
        assert len(cache) == 2
        assert cache.get("k0") is None  # evicted
        assert isinstance(cache.get("k2"), TraceUnsafe)

    def test_counters_track_every_outcome(self):
        cache = TraceCache()
        assert cache.get("absent") is None
        cache.put(CoreTrace(key="t", steps=(TraceStep(1, "load", 0),), done_offset=1))
        cache.put_unsafe("u", "because")
        assert cache.get("t") is not None
        stats = cache.stats()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "store_hits": 0,
            "captures": 1,
            "unsafe": 1,
            "entries": 2,
        }
        cache.reset_counters()
        assert cache.stats()["entries"] == 2
        assert cache.stats()["hits"] == 0

    def test_store_round_trip_feeds_a_fresh_cache(self, tmp_path):
        trace = _capture_one_trace()
        with ResultStore(tmp_path / "store") as store:
            writer = TraceCache()
            writer.attach_store(store)
            writer.put(trace)
            assert store.trace_stats()["entries"] == 1
            reader = TraceCache()
            reader.attach_store(store)
            got = reader.get(trace.key)
            assert got == trace
            assert reader.counters["store_hits"] == 1

    def test_negative_entries_stay_in_process(self, tmp_path):
        with ResultStore(tmp_path / "store") as store:
            cache = TraceCache()
            cache.attach_store(store)
            cache.put_unsafe("deadbeef" * 8, "not safe")
            assert store.trace_stats()["entries"] == 0

    def test_store_gc_ages_traces_by_mtime(self, tmp_path):
        trace = _capture_one_trace()
        with ResultStore(tmp_path / "store") as store:
            store.put_trace(trace.key, trace.to_payload())
            # Backdate the artifact so a 1-day horizon expires it.
            path = store.traces_dir / f"{trace.key}.json"
            old = path.stat().st_mtime - 3 * 86400
            os.utime(path, (old, old))
            outcome = store.gc(keep_days=1.0)
            assert outcome.traces_removed == 1
            assert store.trace_stats()["entries"] == 0


# --------------------------------------------------------------------------- #
# The replay engine: capture-then-replay and per-core fallback.
# --------------------------------------------------------------------------- #


class TestReplayEngine:
    def test_second_run_replays_without_capturing(self):
        config = small_config()
        cold = System(config, _programs_for(config)).run(observed_cores=[0], engine="replay")
        cache = global_trace_cache()
        assert cache.counters["captures"] == 1

        cache.reset_counters()
        system = System(config, _programs_for(config))
        engine = ReplayEngine(system)
        engine.run([0], max_cycles=10_000_000)
        assert engine.replayed_cores == [0]
        assert engine.captured_cores == []
        assert engine.fallback_reasons == {}
        assert cache.counters == {
            "hits": 1,
            "misses": 0,
            "store_hits": 0,
            "captures": 0,
            "unsafe": 0,
        }
        assert isinstance(system.cores[0], ReplayCore)
        assert system.cores[0].done_cycle == cold.done_cycles[0]
        assert system.pmc.as_dict() == cold.pmc.as_dict()

    def test_store_kernel_falls_back_with_a_reason(self):
        config = small_config()
        programs = _programs_for(config, kind="store")
        oracle = System(config, programs).run(observed_cores=[0], engine="stepped")

        system = System(config, _programs_for(config, kind="store"))
        engine = ReplayEngine(system)
        engine.run([0], max_cycles=10_000_000)
        assert 0 in engine.fallback_reasons
        assert "store" in engine.fallback_reasons[0]
        assert engine.replayed_cores == []
        assert isinstance(system.cores[0], Core)
        assert system.cores[0].done_cycle == oracle.done_cycles[0]
        # The failed capture is negative-cached: the next run skips the probe.
        system2 = System(config, _programs_for(config, kind="store"))
        engine2 = ReplayEngine(system2)
        engine2.run([0], max_cycles=10_000_000)
        assert engine2.captured_cores == []
        assert 0 in engine2.fallback_reasons


# --------------------------------------------------------------------------- #
# Bench and compare surfaces.
# --------------------------------------------------------------------------- #


class TestBenchSurfaces:
    def test_replay_spec_is_a_trace_safe_arbiter_sweep(self):
        bench = next(b for b in CAMPAIGN_WORKLOADS if b.replay_compare)
        spec = bench.replay_spec(quick=True)
        assert spec.num_workloads == 0  # synthetic workloads contain stores
        assert spec.include_rsk_reference is True
        assert set(spec.arbiters) == set(bench.arbiters)
        assert len(spec.seeds) == 1
        full = bench.replay_spec(quick=False)
        assert full.rsk_iterations > spec.rsk_iterations

    def _payloads(self, old_entry, new_entry):
        base = {"schema": 4, "rev": "old", "quick": True}
        old = dict(base, campaigns=[old_entry])
        new = dict(base, schema=5, rev="new", campaigns=[new_entry])
        return old, new

    def test_metric_absent_from_baseline_warns_instead_of_raising(self):
        """An older-schema baseline simply predates campaign_replay_speedup:
        the gate must warn and pass, not crash with KeyError."""
        old, new = self._payloads(
            {"name": "sweep", "warm_speedup": 50.0},
            {"name": "sweep", "warm_speedup": 55.0, "campaign_replay_speedup": 2.4},
        )
        result = compare_payloads(old, new, metric="campaign_replay_speedup")
        assert result.ok
        assert any("NO BASELINE" in line for line in result.lines)
        assert any("absent from 1 baseline entry" in line for line in result.lines)

    def test_dropping_a_gated_metric_fails(self):
        old, new = self._payloads(
            {"name": "sweep", "warm_speedup": 50.0, "campaign_replay_speedup": 2.4},
            {"name": "sweep", "warm_speedup": 55.0},
        )
        result = compare_payloads(old, new, metric="campaign_replay_speedup")
        assert not result.ok
        assert any("METRIC LOST" in line for line in result.lines)
