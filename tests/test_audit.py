"""Tests for the audit subsystem: verdicts, flags.json, dimensions, HTML.

The end-to-end audits run on the ``small`` preset with the same reduced
measurement knobs the CI audit job uses, so a full config audit (pipeline +
synchrony + store probe + three-engine cross-check) stays in the
sub-second range per topology.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.audit import (
    CAMPAIGN_DIMENSIONS,
    CONFIG_DIMENSIONS,
    FLAGS_SCHEMA_VERSION,
    AuditDimension,
    AuditOptions,
    AuditReport,
    DimensionResult,
    Finding,
    audit_campaign_dir,
    audit_config,
    audit_preset,
    exit_code_for,
    load_flags,
    render_html,
    report_from_dict,
    resolve_and_audit,
    run_audit,
    worst_verdict,
    write_flags,
)
from repro.campaign import CampaignSpec, ParallelRunner, write_campaign_artifacts
from repro.campaign.runner import summarize_records
from repro.config import get_preset
from repro.errors import AuditError

#: Reduced measurement knobs shared by every end-to-end audit in this file
#: (mirrors the CI audit job).
FAST = AuditOptions(
    k_max=14,
    iterations=15,
    stress_iterations=30,
    synchrony_iterations=60,
    equivalence_iterations=25,
)

CONFIG_DIMENSION_NAMES = (
    "measured_bounds",
    "sandwich",
    "confidence",
    "write_burst",
    "engine_equivalence",
    "synchrony",
)

CAMPAIGN_DIMENSION_NAMES = (
    "artifact_schema",
    "summary_consistency",
    "campaign_bounds",
    "campaign_coverage",
)


def _finding(check: str, verdict: str) -> Finding:
    return Finding(check=check, verdict=verdict, detail=f"{check} is {verdict}")


def _dimension(name: str, *verdicts: str) -> DimensionResult:
    return DimensionResult(
        name=name,
        title=name.replace("_", " "),
        findings=tuple(_finding(f"check_{i}", v) for i, v in enumerate(verdicts)),
    )


# --------------------------------------------------------------------------- #
# Verdict aggregation.
# --------------------------------------------------------------------------- #


class TestVerdicts:
    def test_worst_verdict_orders_pass_warn_fail(self):
        assert worst_verdict([]) == "pass"
        assert worst_verdict(["pass", "pass"]) == "pass"
        assert worst_verdict(["pass", "warn"]) == "warn"
        assert worst_verdict(["warn", "fail", "pass"]) == "fail"

    def test_unknown_verdict_rejected(self):
        with pytest.raises(AuditError):
            worst_verdict(["pass", "maybe"])
        with pytest.raises(AuditError):
            exit_code_for("broken")
        with pytest.raises(AuditError):
            Finding(check="x", verdict="maybe", detail="")

    def test_exit_codes_are_verdict_positions(self):
        assert exit_code_for("pass") == 0
        assert exit_code_for("warn") == 1
        assert exit_code_for("fail") == 2

    def test_dimension_verdict_is_worst_finding(self):
        assert _dimension("d", "pass", "pass").verdict == "pass"
        assert _dimension("d", "pass", "warn").verdict == "warn"
        assert _dimension("d", "warn", "fail").verdict == "fail"
        assert _dimension("d").verdict == "pass"

    def test_report_verdict_and_exit_code_aggregate_dimensions(self):
        report = AuditReport(
            target={"kind": "preset", "name": "small"},
            dimensions=(_dimension("a", "pass"), _dimension("b", "warn")),
        )
        assert report.verdict == "warn"
        assert report.exit_code == 1
        assert report.dimension("b").verdict == "warn"
        with pytest.raises(AuditError):
            report.dimension("missing")

    def test_failed_findings_collects_across_dimensions(self):
        report = AuditReport(
            target={},
            dimensions=(_dimension("a", "fail", "pass"), _dimension("b", "fail")),
        )
        assert [f.check for f in report.failed_findings()] == ["check_0", "check_0"]
        assert report.exit_code == 2


# --------------------------------------------------------------------------- #
# flags.json schema round-trip.
# --------------------------------------------------------------------------- #


class TestFlagsRoundTrip:
    def _report(self) -> AuditReport:
        return AuditReport(
            target={"kind": "preset", "name": "small", "topology": "bus_only"},
            dimensions=(
                DimensionResult(
                    name="demo",
                    title="Demo dimension",
                    findings=(
                        Finding(
                            check="bound",
                            verdict="pass",
                            detail="observed 5 <= ubdm 6",
                            evidence={"observed": 5, "ubdm": 6, "analytical": 6},
                        ),
                        _finding("gate", "warn"),
                    ),
                    tables=(("t", ("a", "b"), (("1", "2"), ("3", "4"))),),
                    histograms=(("h", "gamma", {5: 40, 0: 2}),),
                ),
            ),
        )

    def test_to_dict_from_dict_round_trip_is_lossless(self):
        report = self._report()
        rebuilt = report_from_dict(report.to_dict())
        assert rebuilt == report
        assert rebuilt.to_dict() == report.to_dict()

    def test_payload_is_json_serialisable_and_versioned(self):
        payload = json.loads(json.dumps(self._report().to_dict()))
        assert payload["schema"] == FLAGS_SCHEMA_VERSION
        assert payload["verdict"] == "warn"
        assert payload["exit_code"] == 1
        assert [d["name"] for d in payload["dimensions"]] == ["demo"]
        # Histogram keys are serialised as sorted strings.
        assert payload["dimensions"][0]["histograms"][0]["counts"] == {
            "0": 2,
            "5": 40,
        }

    def test_file_round_trip(self, tmp_path):
        report = self._report()
        path = write_flags(report, tmp_path / "flags.json")
        assert load_flags(path) == report

    def test_unknown_schema_version_rejected(self):
        payload = self._report().to_dict()
        payload["schema"] = FLAGS_SCHEMA_VERSION + 1
        with pytest.raises(AuditError):
            report_from_dict(payload)

    def test_tampered_stored_verdict_rejected(self, tmp_path):
        payload = self._report().to_dict()
        payload["verdict"] = "pass"  # findings aggregate to warn
        path = tmp_path / "flags.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(AuditError):
            load_flags(path)

    def test_malformed_records_rejected(self):
        with pytest.raises(AuditError):
            report_from_dict({"schema": FLAGS_SCHEMA_VERSION})
        payload = self._report().to_dict()
        payload["dimensions"][0]["findings"][0].pop("check")
        with pytest.raises(AuditError):
            report_from_dict(payload)


# --------------------------------------------------------------------------- #
# The dimension registries.
# --------------------------------------------------------------------------- #


class TestDimensionRegistries:
    def test_builtin_dimensions_registered_in_order(self):
        assert CONFIG_DIMENSIONS.names() == CONFIG_DIMENSION_NAMES
        assert CAMPAIGN_DIMENSIONS.names() == CAMPAIGN_DIMENSION_NAMES

    def test_new_dimension_is_a_registry_addition(self):
        def run(context) -> DimensionResult:
            del context
            return _dimension("custom", "pass")

        CONFIG_DIMENSIONS.register(
            "custom",
            AuditDimension(name="custom", title="Custom", description="", run=run),
        )
        try:
            assert "custom" in CONFIG_DIMENSIONS.names()
        finally:
            CONFIG_DIMENSIONS.pop("custom")
        assert CONFIG_DIMENSIONS.names() == CONFIG_DIMENSION_NAMES

    def test_duplicate_dimension_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CONFIG_DIMENSIONS.register(
                "sandwich",
                AuditDimension(name="sandwich", title="dup", description="", run=lambda c: None),
            )


# --------------------------------------------------------------------------- #
# End-to-end config audits (one per built-in topology).
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def bus_only_audit() -> AuditReport:
    return audit_preset("small", options=FAST)


@pytest.fixture(scope="module")
def bank_queue_audit() -> AuditReport:
    return audit_preset("small", topology="bus_bank_queues", options=FAST)


@pytest.fixture(scope="module")
def split_bus_audit() -> AuditReport:
    return audit_preset("small", topology="split_bus", options=FAST)


class TestConfigAudit:
    def test_known_good_platform_passes_every_dimension(self, bus_only_audit):
        assert [d.name for d in bus_only_audit.dimensions] == list(CONFIG_DIMENSION_NAMES)
        assert bus_only_audit.verdict == "pass"
        assert bus_only_audit.exit_code == 0
        assert bus_only_audit.target["kind"] == "preset"
        assert bus_only_audit.target["topology"] == "bus_only"

    def test_measured_bounds_evidence_carries_the_sandwich(self, bus_only_audit):
        dimension = bus_only_audit.dimension("measured_bounds")
        term = next(f for f in dimension.findings if f.check == "term_bus")
        assert term.evidence["observed_worst_case"] <= term.evidence["ubdm"]
        assert term.evidence["ubdm"] <= term.evidence["analytical"]
        end_to_end = next(f for f in dimension.findings if f.check == "end_to_end")
        assert end_to_end.evidence["end_to_end_ubdm"] == 6
        assert dimension.tables  # rendered into report.html

    def test_engine_cross_check_covers_every_fast_engine(self, bus_only_audit):
        dimension = bus_only_audit.dimension("engine_equivalence")
        checks = {f.check for f in dimension.findings}
        assert checks == {"event_vs_stepped", "codegen_vs_stepped", "replay_vs_stepped"}
        assert dimension.verdict == "pass"
        codegen = next(f for f in dimension.findings if f.check == "codegen_vs_stepped")
        # The built-in chain is specialised: no fallback reason.
        assert codegen.evidence["fallback_reason"] is None

    def test_synchrony_dimension_histograms_the_plateau(self, bus_only_audit):
        dimension = bus_only_audit.dimension("synchrony")
        assert dimension.verdict == "pass"
        bound = next(f for f in dimension.findings if f.check == "bound_respected")
        assert bound.evidence["max_observed"] <= bound.evidence["analytical_ubd"]
        assert dimension.histograms

    def test_write_burst_flagged_platform_warns_not_fails(self, bank_queue_audit):
        """The store-side probe flags bank-queue platforms (store rate x
        row-miss service > 1 write per bank service) — a gated assumption,
        not an observed contradiction, so the audit warns and CI stays
        green while the demand-traffic gate still passes."""
        assert bank_queue_audit.verdict == "warn"
        assert bank_queue_audit.exit_code == 1
        dimension = bank_queue_audit.dimension("write_burst")
        by_check = {f.check: f for f in dimension.findings}
        assert by_check["demand_traffic"].verdict == "pass"
        probe = by_check["store_probe"]
        assert probe.verdict == "warn"
        assert probe.evidence["writes_per_bank_service"] > 1

    def test_queue_topology_still_passes_the_bound_dimensions(self, bank_queue_audit):
        for name in ("measured_bounds", "sandwich", "confidence", "synchrony"):
            assert bank_queue_audit.dimension(name).verdict == "pass", name

    def test_split_bus_audits_every_resource_term(self, split_bus_audit):
        dimension = split_bus_audit.dimension("measured_bounds")
        term_checks = {f.check for f in dimension.findings if f.check.startswith("term_")}
        assert term_checks == {"term_bus", "term_memory", "term_bus_response"}
        assert split_bus_audit.dimension("sandwich").verdict == "pass"
        assert split_bus_audit.dimension("write_burst").verdict == "warn"

    def test_unfair_arbitration_degrades_to_warnings_with_reasons(self):
        """A platform outside the methodology's analytical coverage (TDMA
        bus) is not *wrong*, just unverifiable: every bound dimension must
        degrade to ``warn`` with a fallback reason instead of crashing."""
        config = get_preset("small")
        config = replace(config, bus=replace(config.bus, arbitration="tdma"))
        report = AuditReport(
            target={"kind": "config", "name": "small-tdma"},
            dimensions=audit_config(config, FAST),
        )
        assert report.verdict == "warn"
        assert report.exit_code == 1
        for name in ("measured_bounds", "sandwich"):
            dimension = report.dimension(name)
            assert dimension.verdict == "warn", name
            assert "fallback_reason" in dimension.findings[0].evidence
        bound = next(
            f
            for f in report.dimension("synchrony").findings
            if f.check == "bound_respected"
        )
        assert bound.verdict == "warn"
        # The engines must still agree even without analytical bounds.
        assert report.dimension("engine_equivalence").verdict == "pass"


# --------------------------------------------------------------------------- #
# End-to-end campaign audits.
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    spec = CampaignSpec(presets=("small",), num_workloads=2, iterations=4, rsk_iterations=20)
    outcome = ParallelRunner(jobs=1).run(spec.expand())
    directory = tmp_path_factory.mktemp("campaign")
    write_campaign_artifacts(outcome, directory)
    return directory


def _rewrite_campaign(directory, records, summary=None):
    """Write tampered records (and a consistent summary unless given)."""
    with (directory / "results.jsonl").open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
            handle.write("\n")
    payload = summarize_records(records) if summary is None else summary
    (directory / "summary.json").write_text(json.dumps(payload, sort_keys=True))


class TestCampaignAudit:
    def test_finished_campaign_passes_every_dimension(self, campaign_dir):
        report = audit_campaign_dir(campaign_dir)
        assert [d.name for d in report.dimensions] == list(CAMPAIGN_DIMENSION_NAMES)
        assert report.verdict == "pass"
        assert report.exit_code == 0
        assert report.target["kind"] == "campaign"

    def test_bound_violation_in_records_fails_only_campaign_bounds(self, campaign_dir, tmp_path):
        """An observed delay above the analytical ubd is the exact defect
        the audit exists to catch: tamper one rsk record (keeping the
        summary consistent with it) and only ``campaign_bounds`` fails."""
        from repro.campaign import load_campaign

        records, _ = load_campaign(campaign_dir)
        tampered = json.loads(json.dumps(records))  # deep copy
        rsk = next(r for r in tampered if r["kind"] == "rsk")
        rsk["metrics"]["max_contention_delay"] = 999
        rsk["metrics"]["stage_worst_case"]["bus"] = 999
        broken = tmp_path / "broken"
        broken.mkdir()
        _rewrite_campaign(broken, tampered)

        report = audit_campaign_dir(broken)
        assert report.verdict == "fail"
        assert report.exit_code == 2
        assert report.dimension("campaign_bounds").verdict == "fail"
        for name in ("artifact_schema", "summary_consistency", "campaign_coverage"):
            assert report.dimension(name).verdict == "pass", name
        failed = {f.check for f in report.failed_findings()}
        assert any(check.startswith("ubd:") for check in failed)
        assert any(check.startswith("stage:") for check in failed)

    def test_stale_schema_version_fails_artifact_schema(self, campaign_dir, tmp_path):
        from repro.campaign import load_campaign

        records, summary = load_campaign(campaign_dir)
        tampered = json.loads(json.dumps(records))
        tampered[0]["schema"] = 3
        stale = tmp_path / "stale"
        stale.mkdir()
        _rewrite_campaign(stale, tampered, summary=summary)

        report = audit_campaign_dir(stale)
        assert report.verdict == "fail"
        schema_dim = report.dimension("artifact_schema")
        by_check = {f.check: f for f in schema_dim.findings}
        assert by_check["record_schema"].verdict == "fail"
        assert by_check["run_id_unique"].verdict == "pass"

    def test_summary_drift_fails_consistency(self, campaign_dir, tmp_path):
        from repro.campaign import load_campaign

        records, summary = load_campaign(campaign_dir)
        drifted_summary = json.loads(json.dumps(summary))
        drifted_summary["total_runs"] = 99
        drifted = tmp_path / "drifted"
        drifted.mkdir()
        _rewrite_campaign(drifted, records, summary=drifted_summary)

        report = audit_campaign_dir(drifted)
        assert report.dimension("summary_consistency").verdict == "fail"
        finding = report.dimension("summary_consistency").findings[0]
        assert "total_runs" in finding.evidence["drifted_keys"]


# --------------------------------------------------------------------------- #
# Target resolution and artifact emission.
# --------------------------------------------------------------------------- #


class TestRunner:
    def test_unresolvable_target_raises(self, tmp_path):
        with pytest.raises(AuditError):
            resolve_and_audit("no_such_preset")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(AuditError):
            resolve_and_audit(str(empty))

    def test_topology_flag_rejected_for_campaign_dirs(self, campaign_dir):
        with pytest.raises(AuditError):
            resolve_and_audit(str(campaign_dir), topology="split_bus")

    def test_config_file_target(self, tmp_path):
        config = get_preset("small")
        path = tmp_path / "platform.json"
        path.write_text(json.dumps(config.to_dict()))
        report = resolve_and_audit(str(path), options=FAST)
        assert report.target["kind"] == "config"
        assert report.verdict == "pass"

    def test_invalid_config_file_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text('{"num_cores": "three"}')
        with pytest.raises(AuditError):
            resolve_and_audit(str(path))

    def test_run_audit_writes_both_artifacts(self, tmp_path):
        artifacts = run_audit("small", tmp_path / "out", options=FAST)
        assert artifacts.flags_path.exists()
        assert artifacts.html_path.exists()
        assert load_flags(artifacts.flags_path) == artifacts.report


# --------------------------------------------------------------------------- #
# HTML report.
# --------------------------------------------------------------------------- #


class TestHtmlReport:
    def test_report_is_self_contained_and_renders_every_dimension(self, bank_queue_audit):
        html = render_html(bank_queue_audit)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        # Self-contained: no external fetches of any kind.
        for marker in ("http://", "https://", "<script", "<link", "@import"):
            assert marker not in html, marker
        for name in CONFIG_DIMENSION_NAMES:
            assert f'id="{name}"' in html
        # Verdict badges and the store-probe warning surface.
        assert "verdict-warn" in html
        assert "store_probe" in html

    def test_evidence_tables_reuse_the_text_renderers(self, bank_queue_audit):
        from repro.report.tables import render_table

        dimension = bank_queue_audit.dimension("measured_bounds")
        title, headers, rows = dimension.tables[0]
        expected = render_table(list(headers), [list(r) for r in rows])
        html = render_html(bank_queue_audit)
        # The pre-rendered table text is embedded verbatim (HTML-escaped
        # characters aside, the first header line survives).
        assert expected.splitlines()[0] in html


# --------------------------------------------------------------------------- #
# Manifest-aware auditing (streamed / in-flight / crashed campaigns).
# --------------------------------------------------------------------------- #


class TestManifestAudit:
    def test_completed_manifest_checks_pass(self, campaign_dir):
        """write_campaign_artifacts stamps a completed manifest; the audit
        verifies its schema, run count and recomputed campaign identity."""
        report = audit_campaign_dir(campaign_dir)
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        assert by_check["manifest_schema"].verdict == "pass"
        assert by_check["manifest_completed"].verdict == "pass"
        assert by_check["manifest_run_count"].verdict == "pass"
        assert by_check["manifest_campaign_id"].verdict == "pass"
        assert report.target["completed"] is True

    def test_pre_manifest_directory_is_accepted(self, campaign_dir, tmp_path):
        from repro.campaign import load_campaign

        records, summary = load_campaign(campaign_dir)
        legacy = tmp_path / "legacy"
        legacy.mkdir()
        _rewrite_campaign(legacy, records, summary=summary)

        report = audit_campaign_dir(legacy)
        assert report.verdict == "pass"
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        assert by_check["manifest"].verdict == "pass"
        assert "pre-manifest" in by_check["manifest"].detail

    def test_in_flight_campaign_warns_instead_of_failing(self, tmp_path):
        """A streamed campaign caught mid-flight (or after a crash) has a
        completed:false manifest and a truncated record stream: the audit
        must report that as WARN — inspectable, not corrupt."""
        from repro.campaign import CampaignStreamWriter, campaign_digest

        spec = CampaignSpec(presets=("small",), num_workloads=2, iterations=4, rsk_iterations=20)
        descriptors = spec.expand()
        records = ParallelRunner(jobs=1).run(descriptors).records
        stream = CampaignStreamWriter(tmp_path / "inflight", checkpoint_interval=0.0)
        stream.begin(campaign_digest([d.digest() for d in descriptors]), len(descriptors))
        stream.append(records[:2])
        stream.checkpoint()
        stream.abandon()

        report = audit_campaign_dir(stream.directory)
        assert report.verdict == "warn"
        assert report.exit_code == 1
        assert report.target["completed"] is False
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        assert by_check["manifest_completed"].verdict == "warn"
        assert by_check["manifest_run_count"].verdict == "warn"
        assert "in-flight" in by_check["manifest_run_count"].detail

    def test_completed_manifest_with_wrong_identity_fails(self, campaign_dir, tmp_path):
        import shutil

        from repro.campaign import load_manifest, write_manifest

        forged = tmp_path / "forged"
        shutil.copytree(campaign_dir, forged)
        manifest = load_manifest(forged)
        manifest["campaign_id"] = "0" * 64
        write_manifest(forged, manifest)

        report = audit_campaign_dir(forged)
        assert report.verdict == "fail"
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        assert by_check["manifest_campaign_id"].verdict == "fail"

    def test_completed_manifest_with_wrong_run_count_fails(self, campaign_dir, tmp_path):
        import shutil

        from repro.campaign import load_manifest, write_manifest

        short = tmp_path / "short"
        shutil.copytree(campaign_dir, short)
        manifest = load_manifest(short)
        manifest["total_runs"] = 99
        write_manifest(short, manifest)

        report = audit_campaign_dir(short)
        assert report.verdict == "fail"
        by_check = {f.check: f for f in report.dimension("artifact_schema").findings}
        assert by_check["manifest_run_count"].verdict == "fail"
