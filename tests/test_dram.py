"""Unit tests for the DRAM timing model (DRAMsim2 substitute)."""

from __future__ import annotations

import pytest

from repro.config import DramConfig
from repro.errors import SimulationError
from repro.sim.dram import Dram


def make_dram(**kwargs) -> Dram:
    return Dram(DramConfig(**kwargs))


class TestAddressMapping:
    def test_same_row_same_bank(self):
        dram = make_dram()
        assert dram.bank_of(0x0000) == dram.bank_of(0x0040)
        assert dram.row_of(0x0000) == dram.row_of(0x0040)

    def test_consecutive_rows_interleave_banks(self):
        dram = make_dram(num_banks=4, row_size_bytes=4096)
        banks = {dram.bank_of(row * 4096) for row in range(4)}
        assert banks == {0, 1, 2, 3}

    def test_row_index_advances_every_num_banks_rows(self):
        dram = make_dram(num_banks=4, row_size_bytes=4096)
        assert dram.row_of(0) == 0
        assert dram.row_of(4 * 4096) == 1


class TestAccessTiming:
    def test_first_access_pays_activation(self):
        dram = make_dram()
        access = dram.access(0x0, cycle=0)
        assert access.category == "empty"
        assert access.complete_cycle == dram.config.t_rcd + dram.config.row_hit_latency

    def test_row_hit_is_cheaper(self):
        dram = make_dram()
        dram.access(0x0, cycle=0)
        hit = dram.access(0x40, cycle=100)
        assert hit.category == "hit"
        assert hit.complete_cycle - hit.issue_cycle == dram.config.row_hit_latency

    def test_row_conflict_pays_precharge_and_activate(self):
        dram = make_dram(num_banks=1)
        dram.access(0x0, cycle=0)
        conflict = dram.access(0x2000, cycle=100)
        assert conflict.category == "conflict"
        assert conflict.complete_cycle - conflict.issue_cycle == dram.config.row_miss_latency

    def test_same_bank_accesses_serialise(self):
        dram = make_dram(num_banks=1)
        first = dram.access(0x0, cycle=0)
        second = dram.access(0x40, cycle=0)
        assert second.issue_cycle == first.complete_cycle

    def test_different_banks_overlap(self):
        dram = make_dram(num_banks=4, row_size_bytes=4096)
        first = dram.access(0x0000, cycle=0)
        second = dram.access(0x1000, cycle=0)
        assert second.issue_cycle == 0
        assert first.bank != second.bank

    def test_negative_cycle_rejected(self):
        with pytest.raises(SimulationError):
            make_dram().access(0x0, cycle=-1)

    def test_bank_busy_until(self):
        dram = make_dram()
        access = dram.access(0x0, cycle=0)
        assert dram.bank_busy_until(access.bank) == access.complete_cycle

    def test_bank_busy_until_invalid_bank(self):
        with pytest.raises(SimulationError):
            make_dram(num_banks=2).bank_busy_until(5)


class TestStatsAndReset:
    def test_read_write_counters(self):
        dram = make_dram()
        dram.access(0x0, cycle=0, is_write=False)
        dram.access(0x40, cycle=10, is_write=True)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.accesses == 2

    def test_row_hit_rate(self):
        dram = make_dram()
        dram.access(0x0, cycle=0)
        dram.access(0x40, cycle=10)
        dram.access(0x80, cycle=20)
        assert dram.stats.row_hit_rate == pytest.approx(2 / 3)

    def test_row_hit_rate_empty(self):
        assert make_dram().stats.row_hit_rate == 0.0

    def test_open_rows_view(self):
        dram = make_dram(num_banks=2)
        dram.access(0x0, cycle=0)
        rows = dram.open_rows()
        assert rows[dram.bank_of(0x0)] == dram.row_of(0x0)

    def test_reset_closes_rows_but_keeps_stats(self):
        dram = make_dram()
        dram.access(0x0, cycle=0)
        dram.reset()
        assert all(row is None for row in dram.open_rows().values())
        assert dram.stats.accesses == 1
        # After a reset the next access pays activation again.
        assert dram.access(0x0, cycle=100).category == "empty"
