"""Unit tests for the methodology's confidence checks (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.analysis.confidence import (
    ConfidenceCheck,
    ConfidenceReport,
    assess_confidence,
)
from repro.analysis.injection import DeltaNopEstimate
from repro.analysis.sawtooth import PeriodEstimate


def delta_nop(ratio=1.0, rounded=1):
    return DeltaNopEstimate(
        cycles_per_nop=ratio, rounded=rounded, executed_nops=1000, execution_time=int(1000 * ratio)
    )


def period(period_k=27, agreement=1.0):
    return PeriodEstimate(
        period_k=period_k,
        period_cycles=period_k,
        per_method={"exact": period_k},
        agreement=agreement,
    )


class TestBusSaturationCheck:
    def test_saturated_bus_passes(self):
        report = assess_confidence(bus_utilisation=0.99)
        assert report.passed

    def test_unsaturated_bus_fails(self):
        report = assess_confidence(bus_utilisation=0.5)
        assert not report.passed
        assert report.failed_checks()[0].name == "bus_saturation"

    def test_threshold_is_configurable(self):
        report = assess_confidence(bus_utilisation=0.8, utilisation_threshold=0.75)
        assert report.passed


class TestDeltaNopCheck:
    def test_exact_delta_nop_passes(self):
        report = assess_confidence(bus_utilisation=1.0, delta_nop=delta_nop(1.0))
        assert report.passed

    def test_noisy_delta_nop_fails(self):
        report = assess_confidence(bus_utilisation=1.0, delta_nop=delta_nop(1.3))
        names = [check.name for check in report.failed_checks()]
        assert "delta_nop" in names

    def test_tolerance_configurable(self):
        report = assess_confidence(
            bus_utilisation=1.0, delta_nop=delta_nop(1.08), delta_nop_tolerance=0.1
        )
        assert report.passed


class TestPeriodChecks:
    def test_agreement_and_coverage_pass(self):
        report = assess_confidence(
            bus_utilisation=1.0,
            delta_nop=delta_nop(),
            period=period(27, agreement=1.0),
            sweep_span_k=60,
        )
        assert report.passed
        assert len(report.checks) == 4

    def test_low_agreement_fails(self):
        report = assess_confidence(
            bus_utilisation=1.0, period=period(27, agreement=0.25), sweep_span_k=60
        )
        assert not report.passed

    def test_insufficient_sweep_coverage_fails(self):
        report = assess_confidence(
            bus_utilisation=1.0, period=period(27), sweep_span_k=30
        )
        names = [check.name for check in report.failed_checks()]
        assert "sweep_coverage" in names

    def test_coverage_not_checked_without_span(self):
        report = assess_confidence(bus_utilisation=1.0, period=period(27))
        names = [check.name for check in report.checks]
        assert "sweep_coverage" not in names


class TestReportRendering:
    def test_summary_contains_pass_and_fail_lines(self):
        report = ConfidenceReport(
            checks=[
                ConfidenceCheck(name="a", passed=True, detail="fine"),
                ConfidenceCheck(name="b", passed=False, detail="broken"),
            ]
        )
        summary = report.summary()
        assert "[PASS] a" in summary
        assert "[FAIL] b" in summary
        assert not report.passed
