"""Unit tests for the methodology's confidence checks (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.analysis.confidence import (
    ConfidenceCheck,
    ConfidenceReport,
    assess_confidence,
)
from repro.analysis.injection import DeltaNopEstimate
from repro.analysis.sawtooth import PeriodEstimate


def delta_nop(ratio=1.0, rounded=1):
    return DeltaNopEstimate(
        cycles_per_nop=ratio, rounded=rounded, executed_nops=1000, execution_time=int(1000 * ratio)
    )


def period(period_k=27, agreement=1.0):
    return PeriodEstimate(
        period_k=period_k,
        period_cycles=period_k,
        per_method={"exact": period_k},
        agreement=agreement,
    )


class TestBusSaturationCheck:
    def test_saturated_bus_passes(self):
        report = assess_confidence(bus_utilisation=0.99)
        assert report.passed

    def test_unsaturated_bus_fails(self):
        report = assess_confidence(bus_utilisation=0.5)
        assert not report.passed
        assert report.failed_checks()[0].name == "bus_saturation"

    def test_threshold_is_configurable(self):
        report = assess_confidence(bus_utilisation=0.8, utilisation_threshold=0.75)
        assert report.passed


class TestDeltaNopCheck:
    def test_exact_delta_nop_passes(self):
        report = assess_confidence(bus_utilisation=1.0, delta_nop=delta_nop(1.0))
        assert report.passed

    def test_noisy_delta_nop_fails(self):
        report = assess_confidence(bus_utilisation=1.0, delta_nop=delta_nop(1.3))
        names = [check.name for check in report.failed_checks()]
        assert "delta_nop" in names

    def test_tolerance_configurable(self):
        report = assess_confidence(
            bus_utilisation=1.0, delta_nop=delta_nop(1.08), delta_nop_tolerance=0.1
        )
        assert report.passed


class TestPeriodChecks:
    def test_agreement_and_coverage_pass(self):
        report = assess_confidence(
            bus_utilisation=1.0,
            delta_nop=delta_nop(),
            period=period(27, agreement=1.0),
            sweep_span_k=60,
        )
        assert report.passed
        assert len(report.checks) == 4

    def test_low_agreement_fails(self):
        report = assess_confidence(
            bus_utilisation=1.0, period=period(27, agreement=0.25), sweep_span_k=60
        )
        assert not report.passed

    def test_insufficient_sweep_coverage_fails(self):
        report = assess_confidence(bus_utilisation=1.0, period=period(27), sweep_span_k=30)
        names = [check.name for check in report.failed_checks()]
        assert "sweep_coverage" in names

    def test_coverage_not_checked_without_span(self):
        report = assess_confidence(bus_utilisation=1.0, period=period(27))
        names = [check.name for check in report.checks]
        assert "sweep_coverage" not in names


class TestReportRendering:
    def test_summary_contains_pass_and_fail_lines(self):
        report = ConfidenceReport(
            checks=[
                ConfidenceCheck(name="a", passed=True, detail="fine"),
                ConfidenceCheck(name="b", passed=False, detail="broken"),
            ]
        )
        summary = report.summary()
        assert "[PASS] a" in summary
        assert "[FAIL] b" in summary
        assert not report.passed


class TestWriteBurstGate:
    """The PMC gate on the memory term's <=1-outstanding-write assumption."""

    @staticmethod
    def _pmc(num_cores, cycles, stores_per_core):
        from repro.sim.pmc import PerformanceCounters

        pmc = PerformanceCounters(num_cores=num_cores)
        pmc.cycles = cycles
        for core, stores in enumerate(stores_per_core):
            pmc.core[core].stores = stores
        return pmc

    def test_passes_without_memory_queues(self):
        from repro.analysis.confidence import assess_write_burst
        from repro.config import small_config

        config = small_config()
        pmc = self._pmc(3, 100, [90, 0, 0])
        check = assess_write_burst(config, pmc)
        assert check.passed
        assert "no arbitrated memory stage" in check.detail

    def test_flags_bursty_writes_on_chained_topology(self):
        from repro.analysis.confidence import assess_write_burst
        from repro.config import TopologyConfig, small_config

        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        # One store every other cycle refills a bank (row-miss service 33)
        # far faster than it drains, and the 8-entry buffer can hold the burst.
        pmc = self._pmc(3, 100, [50, 0, 0])
        check = assess_write_burst(config, pmc)
        assert not check.passed
        assert "under-bounds" in check.detail
        assert check.name == "write_burst"

    def test_passes_with_single_entry_store_buffer(self):
        from repro.analysis.confidence import assess_write_burst
        from repro.config import StoreBufferConfig, TopologyConfig, small_config

        config = small_config(
            topology=TopologyConfig(name="bus_bank_queues"),
            store_buffer=StoreBufferConfig(entries=1),
        )
        pmc = self._pmc(3, 100, [50, 0, 0])
        assert assess_write_burst(config, pmc).passed

    def test_passes_for_low_write_rates(self):
        from repro.analysis.confidence import assess_write_burst
        from repro.config import TopologyConfig, small_config

        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        # One store per 100 cycles: a bank drains long before the next write.
        pmc = self._pmc(3, 1000, [10, 0, 0])
        assert assess_write_burst(config, pmc).passed

    def test_real_store_stress_run_is_flagged(self):
        """A store rsk hammering one bank through the chained topology is the
        configuration the gate exists for: write bursts pile more than
        Nc - 1 accesses onto the bank queue."""
        from repro.analysis.confidence import assess_write_burst
        from repro.config import TopologyConfig, small_config
        from repro.kernels.rsk import build_bank_conflict_rsk
        from repro.methodology.experiment import ExperimentRunner

        config = small_config(topology=TopologyConfig(name="bus_bank_queues"))
        runner = ExperimentRunner(config, preload_l2=False, preload_il1=True)
        scua = build_bank_conflict_rsk(config, 0, kind="store", iterations=40)
        contenders = {
            core: build_bank_conflict_rsk(config, core, kind="store", iterations=None)
            for core in range(1, config.num_cores)
        }
        contended = runner.run_contended(scua, contenders)
        check = assess_write_burst(config, contended.result.pmc)
        assert not check.passed, check.detail
