"""Unit tests for the performance monitoring counter block."""

from __future__ import annotations

import pytest

from repro.sim.pmc import CoreCounters, PerformanceCounters


class TestCoreCounters:
    def test_as_dict_roundtrip(self):
        counters = CoreCounters(instructions=5, loads=2, bus_requests=3)
        data = counters.as_dict()
        assert data["instructions"] == 5
        assert data["loads"] == 2
        assert data["bus_requests"] == 3


class TestPerformanceCounters:
    def test_one_counter_set_per_core(self):
        pmc = PerformanceCounters(num_cores=3)
        assert len(pmc.core) == 3

    def test_note_bus_service_updates_core_and_global(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.note_bus_service(port=1, service_cycles=9, wait_cycles=4)
        assert pmc.bus_busy_cycles == 9
        assert pmc.core[1].bus_requests == 1
        assert pmc.core[1].bus_busy_cycles == 9
        assert pmc.core[1].contention_cycles == 4

    def test_note_bus_service_ignores_out_of_range_port(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.note_bus_service(port=5, service_cycles=9, wait_cycles=0)
        assert pmc.bus_busy_cycles == 9
        assert pmc.total_requests() == 0

    def test_note_instruction_classifies_mnemonics(self):
        pmc = PerformanceCounters(num_cores=1)
        for mnemonic in ("load", "store", "nop", "alu"):
            pmc.note_instruction(0, mnemonic)
        counters = pmc.core[0]
        assert counters.instructions == 4
        assert counters.loads == 1
        assert counters.stores == 1
        assert counters.nops == 1

    def test_bus_utilisation(self):
        pmc = PerformanceCounters(num_cores=1)
        pmc.cycles = 100
        pmc.bus_busy_cycles = 50
        assert pmc.bus_utilisation() == pytest.approx(0.5)

    def test_bus_utilisation_clamped_to_one(self):
        pmc = PerformanceCounters(num_cores=1)
        pmc.cycles = 10
        pmc.bus_busy_cycles = 15
        assert pmc.bus_utilisation() == 1.0

    def test_bus_utilisation_zero_cycles(self):
        assert PerformanceCounters(num_cores=1).bus_utilisation() == 0.0

    def test_core_bus_utilisation(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.cycles = 100
        pmc.note_bus_service(0, 25, 0)
        assert pmc.core_bus_utilisation(0) == pytest.approx(0.25)
        assert pmc.core_bus_utilisation(1) == 0.0

    def test_average_contention(self):
        pmc = PerformanceCounters(num_cores=1)
        pmc.note_bus_service(0, 9, 10)
        pmc.note_bus_service(0, 9, 20)
        assert pmc.average_contention(0) == pytest.approx(15.0)

    def test_average_contention_with_no_requests(self):
        assert PerformanceCounters(num_cores=1).average_contention(0) == 0.0

    def test_total_requests(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.note_bus_service(0, 9, 0)
        pmc.note_bus_service(1, 9, 0)
        assert pmc.total_requests() == 2

    def test_as_dict_structure(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.cycles = 10
        data = pmc.as_dict()
        assert data["cycles"] == 10
        assert len(data["cores"]) == 2
        assert "bus_utilisation" in data


class TestResourceMaxWait:
    def test_max_wait_tracks_worst_transaction(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.note_bus_service(port=0, service_cycles=9, wait_cycles=4)
        pmc.note_bus_service(port=1, service_cycles=9, wait_cycles=11)
        pmc.note_bus_service(port=0, service_cycles=9, wait_cycles=2)
        channel = pmc.resources["bus"]
        assert channel.max_wait == 11
        assert channel.as_dict()["max_wait"] == 11

    def test_max_wait_is_per_channel(self):
        pmc = PerformanceCounters(num_cores=2)
        pmc.note_bus_service(port=0, service_cycles=3, wait_cycles=7)
        pmc.note_bus_service(port=0, service_cycles=3, wait_cycles=2, resource="bus_response")
        assert pmc.resources["bus"].max_wait == 7
        assert pmc.resources["bus_response"].max_wait == 2
